//! Eviction and saturation property battery: random request streams
//! against a deliberately tiny cache budget must preserve the LRU
//! invariants, never deadlock under pool saturation, and leave counters
//! that reconcile **exactly** against the request log — no lookup
//! unaccounted, no phantom insert, byte budget never exceeded.
//!
//! Seeded randomness (`rtdc_rng`) keeps failures replayable; the
//! interleavings still vary because the OS schedules the racing clients.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rtdc_rng::Rng64;
use rtdc_serve::cache::{CacheKey, ImageCache, Outcome};
use rtdc_serve::client::{request_line, Client};
use rtdc_serve::server::{ServeConfig, Server};

/// Builds a small sealed image whose resident size depends on `size`.
fn image(size: usize) -> rtdc::image::MemoryImage {
    let mut img = rtdc::image::MemoryImage {
        name: "stress".into(),
        scheme: None,
        second_regfile: false,
        entry: 0,
        initial_sp: 0,
        segments: vec![rtdc::image::Segment {
            name: ".native".into(),
            base: 0x1000,
            bytes: vec![0x5A; size],
        }],
        c0_init: Vec::new(),
        handler_range: None,
        compressed_range: None,
        proc_regions: Vec::new(),
        proc_names: Vec::new(),
        sizes: rtdc::image::SizeReport {
            original_text_bytes: size as u32,
            native_text_bytes: size as u32,
            compressed_payload_bytes: 0,
            handler_bytes: 0,
        },
        integrity: Vec::new(),
        line_crcs: Vec::new(),
    };
    img.seal();
    img
}

#[test]
fn random_streams_against_tiny_budget_reconcile_exactly() {
    // Budget fits ~3 of the 12 possible entries: constant LRU churn.
    let one = image(256).resident_bytes();
    let cache = Arc::new(ImageCache::new(3 * one + one / 2));
    let keys: Vec<CacheKey> = (0..12)
        .map(|i| CacheKey {
            bench: format!("bench-{}", i % 4),
            label: format!("label-{}", i / 4),
            plan_digest: 0x1000 + i as u32,
        })
        .collect();

    const THREADS: usize = 8;
    const REQS: usize = 400;
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let keys = &keys;
            let (hits, misses) = (&hits, &misses);
            scope.spawn(move || {
                let mut rng = Rng64::seed_from_u64(0x57_2E55 + t as u64);
                for _ in 0..REQS {
                    // Zipf-ish skew: low keys much hotter than high ones,
                    // so hits and evictions both actually happen.
                    let r = rng.gen_range(0..keys.len() * (keys.len() + 1) / 2);
                    let mut idx = 0;
                    let mut acc = keys.len();
                    while r >= acc {
                        idx += 1;
                        acc += keys.len() - idx;
                    }
                    let key = &keys[idx];
                    let (img, outcome) = cache
                        .get_or_build(key, || Ok(image(256)))
                        .expect("build never fails here");
                    assert!(img.verify_integrity().is_ok());
                    match outcome {
                        Outcome::Hit => hits.fetch_add(1, Ordering::Relaxed),
                        Outcome::Miss => misses.fetch_add(1, Ordering::Relaxed),
                        Outcome::Poisoned => panic!("nothing poisons in this test"),
                        Outcome::StoreHit => panic!("no disk store in this test"),
                    };
                }
            });
        }
    });

    let s = cache.stats();
    let total = (THREADS * REQS) as u64;
    // Exact reconciliation against the request log.
    assert_eq!(s.lookups, total, "{s:?}");
    assert_eq!(s.lookups, s.hits + s.misses + s.poisoned, "{s:?}");
    assert_eq!(s.poisoned, 0, "{s:?}");
    // Single-flight means the cache may serve a waiter from another
    // thread's insert: the waiter counts as a hit (it did not build).
    // Either way the caller-observed outcomes must match the counters.
    assert_eq!(s.hits, hits.load(Ordering::Relaxed), "{s:?}");
    assert_eq!(s.misses, misses.load(Ordering::Relaxed), "{s:?}");
    // Inserts = misses that fit (every image fits here); entries =
    // inserts - evictions.
    assert_eq!(s.uncached, 0, "{s:?}");
    assert_eq!(s.inserts, s.misses, "{s:?}");
    assert_eq!(s.entries, s.inserts - s.evictions, "{s:?}");
    assert!(s.evictions > 0, "a tiny budget must evict: {s:?}");
    // The byte budget is an invariant, not a hint.
    assert!(s.resident_bytes <= s.budget_bytes, "budget exceeded: {s:?}");
    assert_eq!(s.entries, cache.resident_keys().len() as u64);
}

#[test]
fn lru_order_is_respected_under_serial_churn() {
    let one = image(128).resident_bytes();
    let cache = ImageCache::new(2 * one);
    let key = |n: &str| CacheKey {
        bench: n.into(),
        label: "l".into(),
        plan_digest: 1,
    };
    // Fill: [a, b]; touch a; insert c -> b (the LRU) must go.
    for n in ["a", "b"] {
        cache.get_or_build(&key(n), || Ok(image(128))).unwrap();
    }
    cache.get_or_build(&key("a"), || unreachable!()).unwrap();
    cache.get_or_build(&key("c"), || Ok(image(128))).unwrap();
    let resident = cache.resident_keys();
    assert_eq!(
        resident,
        vec![key("a"), key("c")],
        "LRU order violated (b must be evicted, a older than c)"
    );
    // And the evicted key rebuilds on demand.
    let (_, outcome) = cache.get_or_build(&key("b"), || Ok(image(128))).unwrap();
    assert_eq!(outcome, Outcome::Miss);
}

#[test]
fn pool_saturation_with_more_clients_than_workers_never_deadlocks() {
    // 2 workers, 6 clients, a cache budget small enough to thrash on
    // real images: every request must still complete and the counters
    // must reconcile against the number of requests sent.
    let path = std::env::temp_dir().join(format!("rtdc-serve-stress-{}.sock", std::process::id()));
    let server = Server::start(
        &path,
        ServeConfig {
            threads: 2,
            cache_bytes: 6 << 10, // a few KB: real images churn constantly
            max_insns: 2_000_000_000,
            ..ServeConfig::default()
        },
    )
    .expect("start server");

    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 25;
    let sent = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for id in 0..CLIENTS {
            let path = &path;
            let sent = &sent;
            scope.spawn(move || {
                let mut rng = Rng64::seed_from_u64(0x5A7_0000 + id as u64);
                let mut c = Client::connect(path).expect("connect");
                let benches = ["sort", "crc32", "matmul", "strsearch"];
                let labels = ["native", "d", "d+rf", "cp", "d2", "lz"];
                for _ in 0..PER_CLIENT {
                    let bench = rng.choose(&benches);
                    let label = rng.choose(&labels);
                    // Builds only: this battery stresses the cache and
                    // pool, not the simulator.
                    let resp = c
                        .request_raw(&request_line("build", bench, label, None))
                        .expect("request");
                    assert!(resp.starts_with(r#"{"ok":true"#), "{resp}");
                    sent.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let s = server.state().cache.stats();
    let total = sent.load(Ordering::Relaxed);
    assert_eq!(total, (CLIENTS * PER_CLIENT) as u64);
    // Every build request makes exactly one cache lookup; the log and
    // the counters must agree exactly.
    assert_eq!(s.lookups, total, "{s:?}");
    assert_eq!(s.lookups, s.hits + s.misses + s.poisoned, "{s:?}");
    assert_eq!(s.entries, s.inserts - s.evictions - s.poisoned, "{s:?}");
    assert!(s.resident_bytes <= s.budget_bytes, "{s:?}");
    drop(server);
}
