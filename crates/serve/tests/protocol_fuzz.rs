//! Protocol fuzz battery: arbitrary malformed, truncated, mutated, and
//! oversized request lines must each produce exactly one *typed* error
//! response — never a panic, never a wedged worker pool, never a stuck
//! connection.
//!
//! Mirrors the `decode_no_panic` convention from `rtdc-compress`: CI
//! runs a fixed smoke iteration count; set `RTDC_FUZZ_ITERS` to fuzz
//! longer (e.g. `RTDC_FUZZ_ITERS=20000 cargo test -p rtdc-serve
//! --test protocol_fuzz --release`).

use rtdc_rng::Rng64;
use rtdc_serve::cache::CacheKey;
use rtdc_serve::client::Client;
use rtdc_serve::json::Json;
use rtdc_serve::protocol::MAX_LINE_BYTES;
use rtdc_serve::server::{handle_line, ServeConfig, ServeState, Server};
use rtdc_serve::store::{check_envelope, decode_store_file, encode_store_file};

fn fuzz_iters(default: usize) -> usize {
    std::env::var("RTDC_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Seed corpus of near-valid requests the mutator chews on.
const CORPUS: [&str; 8] = [
    r#"{"op":"build","bench":"sort","scheme":"d"}"#,
    r#"{"op":"run","bench":"crc32","scheme":"cp+rf","max_insns":100000}"#,
    r#"{"op":"trace","bench":"sort"}"#,
    r#"{"op":"plan","bench":"tiny-loop","scheme":"d2"}"#,
    r#"{"op":"stats"}"#,
    r#"{"op":"run","bench":"sort","plan":"rtdc-plan v1 scheme=d source=manual iter=0 procs=1\n0 d 0\n"}"#,
    r#"{"op":"build","bench":"matmul","scheme":"lz+rf"}"#,
    r#"{"op":"run","bench":"strsearch","scheme":"native"}"#,
];

/// One mutated line: a corpus entry with random edits, or pure garbage.
fn mutate(rng: &mut Rng64) -> String {
    let mut line = if rng.gen_bool_p(0.15) {
        // Pure garbage bytes (newline-free so it stays one line).
        let len = rng.gen_range(0..200usize);
        let mut s = String::new();
        for _ in 0..len {
            let b = (rng.gen_u32() % 94 + 33) as u8; // printable, no \n
            s.push(b as char);
        }
        return s;
    } else {
        (*rng.choose(&CORPUS)).to_string()
    };
    for _ in 0..rng.gen_range(1..4usize) {
        match rng.gen_range(0..5u32) {
            // Truncate.
            0 => {
                if !line.is_empty() {
                    let cut = rng.gen_range(0..line.len());
                    while !line.is_char_boundary(cut) {
                        line.pop();
                    }
                    line.truncate(cut);
                }
            }
            // Flip one byte to another printable.
            1 => {
                if !line.is_empty() {
                    let at = rng.gen_range(0..line.len());
                    if line.is_char_boundary(at) && line.is_char_boundary(at + 1) {
                        let c = (rng.gen_u32() % 94 + 33) as u8 as char;
                        line.replace_range(at..at + 1, &c.to_string());
                    }
                }
            }
            // Duplicate a slice (unbalances braces/quotes).
            2 => {
                let at = rng.gen_range(0..line.len().max(1));
                if line.is_char_boundary(at) {
                    let dup: String = line[at..].chars().take(8).collect();
                    line.push_str(&dup);
                }
            }
            // Swap field values wholesale.
            3 => {
                line = line
                    .replace("\"sort\"", "\"\\u0000\"")
                    .replace("\"d\"", "\"-1e999\"");
            }
            // Inject deep nesting.
            _ => {
                line.push_str(&"[".repeat(rng.gen_range(1..40usize)));
            }
        }
    }
    line
}

#[test]
fn dispatcher_never_panics_on_mutated_lines() {
    // Direct `handle_line` fuzz: a panic here fails the test on the
    // spot; every response must itself be valid JSON with an `ok` bool.
    let state = ServeState::new(&ServeConfig {
        threads: 1,
        cache_bytes: 1 << 20,
        max_insns: 100_000, // cap simulation: fuzz may form valid runs
        ..ServeConfig::default()
    });
    let mut rng = Rng64::seed_from_u64(0xF022_0001);
    for i in 0..fuzz_iters(300) {
        let line = mutate(&mut rng);
        let resp = handle_line(&state, &line, None);
        let parsed = rtdc_serve::json::parse(&resp)
            .unwrap_or_else(|e| panic!("iter {i}: response not JSON ({e}): {resp}\nline: {line}"));
        assert!(
            parsed.get("ok").and_then(Json::as_bool).is_some(),
            "iter {i}: response missing ok: {resp}"
        );
        if parsed.get("ok").and_then(Json::as_bool) == Some(false) {
            let kind = parsed.get("error").and_then(Json::as_str);
            assert!(kind.is_some(), "iter {i}: error response untyped: {resp}");
        }
    }
}

#[test]
fn socket_survives_fuzz_and_stays_responsive() {
    let path = std::env::temp_dir().join(format!("rtdc-serve-fuzz-{}.sock", std::process::id()));
    let server = Server::start(
        &path,
        ServeConfig {
            threads: 2,
            cache_bytes: 1 << 20,
            max_insns: 100_000,
            ..ServeConfig::default()
        },
    )
    .expect("start server");

    let mut rng = Rng64::seed_from_u64(0xF022_0002);
    let mut c = Client::connect(&path).expect("connect");
    for i in 0..fuzz_iters(200) {
        let line = mutate(&mut rng);
        let resp = c
            .request_raw(&line)
            .unwrap_or_else(|e| panic!("iter {i}: connection wedged: {e}\nline: {line}"));
        assert!(
            rtdc_serve::json::parse(&resp).is_ok(),
            "iter {i}: non-JSON response: {resp}"
        );
        // Interleave a known-good request: the pool must stay live the
        // whole time, not just at the end.
        if i % 25 == 0 {
            let ok = c.request(r#"{"op":"stats"}"#).expect("stats mid-fuzz");
            assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        }
    }

    // After the storm: real work still flows end to end.
    let resp = c
        .request(r#"{"op":"run","bench":"sort","scheme":"d","max_insns":100000}"#)
        .expect("post-fuzz run");
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "pool wedged after fuzzing"
    );
    drop(server);
}

#[test]
fn oversized_lines_are_rejected_without_buffering_or_wedging() {
    let path =
        std::env::temp_dir().join(format!("rtdc-serve-oversize-{}.sock", std::process::id()));
    let server = Server::start(
        &path,
        ServeConfig {
            threads: 2,
            cache_bytes: 1 << 20,
            max_insns: 100_000,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let mut c = Client::connect(&path).expect("connect");

    // A line just over the cap: typed rejection.
    let big = format!(
        r#"{{"op":"build","bench":"sort","scheme":"{}"}}"#,
        "x".repeat(MAX_LINE_BYTES)
    );
    let resp = c.request_raw(&big).expect("oversized request");
    assert!(
        resp.contains(r#""error":"oversized-line""#),
        "expected oversized-line rejection: {}",
        &resp[..resp.len().min(200)]
    );

    // A line just under the cap: parses (and is rejected for its
    // content, not its size).
    let padding = "y".repeat(MAX_LINE_BYTES - 64);
    let near = format!(r#"{{"op":"build","bench":"sort","scheme":"{padding}"}}"#);
    assert!(near.len() <= MAX_LINE_BYTES, "test arithmetic off");
    let resp = c.request_raw(&near).expect("near-cap request");
    assert!(
        resp.contains(r#""error":"unknown-scheme""#),
        "near-cap line must be parsed on its merits: {}",
        &resp[..resp.len().min(200)]
    );

    // Same connection, still healthy.
    let resp = c
        .request(r#"{"op":"stats"}"#)
        .expect("stats after oversize");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    drop(server);
}

/// A small sealed image to encode into store files for mutation.
fn store_image() -> rtdc::image::MemoryImage {
    let mut img = rtdc::image::MemoryImage {
        name: "fuzz".into(),
        scheme: None,
        second_regfile: false,
        entry: 0x1000,
        initial_sp: 0x8000,
        segments: vec![rtdc::image::Segment {
            name: ".native".into(),
            base: 0x1000,
            bytes: (0..=255u8).cycle().take(600).collect(),
        }],
        c0_init: Vec::new(),
        handler_range: None,
        compressed_range: None,
        proc_regions: Vec::new(),
        proc_names: Vec::new(),
        sizes: rtdc::image::SizeReport {
            original_text_bytes: 600,
            native_text_bytes: 600,
            compressed_payload_bytes: 0,
            handler_bytes: 0,
        },
        integrity: Vec::new(),
        line_crcs: Vec::new(),
    };
    img.seal();
    img
}

#[test]
fn store_file_decode_never_panics_on_mutated_bytes() {
    // The on-disk mutation family: flips, truncations, garbage headers,
    // splices, and extensions of a valid store file must all come back
    // as typed `StoreError`s from the envelope check and the full
    // decode — never a panic, never a silently-accepted mutant.
    let key = CacheKey {
        bench: "tiny-walker".into(),
        label: "d+rf".into(),
        plan_digest: 0xF025,
    };
    let baseline = encode_store_file(&key, &store_image());
    // Sanity: the pristine file round-trips.
    let (k, img) = decode_store_file(&baseline).expect("pristine file decodes");
    assert_eq!(k, key);
    assert!(img.verify_integrity().is_ok());

    let mut rng = Rng64::seed_from_u64(0xF022_0003);
    let mut rejected = 0usize;
    let iters = fuzz_iters(400);
    for i in 0..iters {
        let mut bytes = baseline.clone();
        match rng.gen_range(0..5u32) {
            // Bit flip anywhere.
            0 => {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1 << rng.gen_range(0u32..8);
            }
            // Truncate to any prefix (including empty).
            1 => bytes.truncate(rng.gen_range(0..bytes.len())),
            // Garbage header: stomp magic/version/lengths.
            2 => {
                let head = rng.gen_range(1..24usize).min(bytes.len());
                for b in &mut bytes[..head] {
                    *b = (rng.gen_u32() & 0xFF) as u8;
                }
            }
            // Splice: duplicate an interior window in place.
            3 => {
                let at = rng.gen_range(8..bytes.len() - 8);
                let window: Vec<u8> = bytes[at..(at + 8).min(bytes.len())].to_vec();
                let dst = rng.gen_range(0..bytes.len() - window.len());
                bytes[dst..dst + window.len()].copy_from_slice(&window);
                if bytes == baseline {
                    continue; // splice landed on identical bytes
                }
            }
            // Extend: trailing garbage after a valid file.
            _ => {
                for _ in 0..rng.gen_range(1..64usize) {
                    bytes.push((rng.gen_u32() & 0xFF) as u8);
                }
            }
        }
        // Both entry points must fail typed — a mutant that still
        // passes the whole-file CRC *and* decodes *and* verifies would
        // be a silent acceptance, which is the one forbidden outcome.
        let env = check_envelope(&bytes);
        let full = decode_store_file(&bytes);
        match (env, full) {
            (Err(e), Err(f)) => {
                // Typed both ways; `kind` is the taxonomy CI greps for.
                assert!(!e.kind().is_empty() && !f.kind().is_empty());
                rejected += 1;
            }
            (Ok(_), Ok((k2, img2))) => {
                // Only acceptable if the mutation was semantically
                // invisible (CRC32 collisions are possible in theory
                // but the decoded result must still be *correct*).
                assert_eq!(k2, key, "iter {i}: mutant changed the key");
                assert!(
                    img2.verify_integrity().is_ok(),
                    "iter {i}: mutant decoded but fails integrity"
                );
            }
            (env, full) => panic!(
                "iter {i}: envelope and decode disagree: {env:?} vs {:?}",
                full.map(|(k, _)| k)
            ),
        }
    }
    assert!(
        rejected >= iters * 9 / 10,
        "mutation family too weak: only {rejected}/{iters} rejected"
    );
}
