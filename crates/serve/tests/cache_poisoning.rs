//! Cache-poisoning negative battery: corrupt a cached image *in place*
//! (reusing the `rtdc::fault` machinery from the fault-injection PR) and
//! prove the next hit is rejected — [`ImageError::ChecksumMismatch`],
//! not silently served — then transparently rebuilt.
//!
//! The cache's verify-on-hit property is the load-bearing claim of the
//! whole content-addressed design: a hit is only as trustworthy as the
//! integrity seal it re-checks. These tests poison through every layer
//! (direct cache handle, dispatcher, live socket) and assert the
//! response bytes after poisoning equal the clean bytes — proof the
//! corruption never leaked into a reply.

use rtdc::error::ImageError;
use rtdc::fault::FaultPlan;
use rtdc_serve::cache::CacheKey;
use rtdc_serve::client::{request_line, Client};
use rtdc_serve::server::{handle_line, ServeConfig, ServeState, Server};

/// The segment to corrupt: the largest one, so offsets 0..=4 are always
/// in range whatever the codec's layout looks like.
fn largest_segment(image: &rtdc::image::MemoryImage) -> String {
    image
        .segments
        .iter()
        .max_by_key(|s| s.bytes.len())
        .expect("image has segments")
        .name
        .clone()
}

fn state() -> ServeState {
    ServeState::new(&ServeConfig {
        threads: 2,
        cache_bytes: 64 << 20,
        max_insns: 2_000_000_000,
        ..ServeConfig::default()
    })
}

/// The cache key `obtain_image` computes for a uniform-scheme build is
/// reproducible from the response (`label` + `plan_digest`).
fn key_from_response(resp: &str, bench: &str) -> CacheKey {
    let v = rtdc_serve::json::parse(resp).expect("response is JSON");
    CacheKey {
        bench: bench.to_string(),
        label: v
            .get("label")
            .and_then(rtdc_serve::json::Json::as_str)
            .expect("label")
            .to_string(),
        plan_digest: v
            .get("plan_digest")
            .and_then(rtdc_serve::json::Json::as_u64)
            .expect("plan_digest") as u32,
    }
}

#[test]
fn bit_flip_is_rejected_with_checksum_mismatch_and_rebuilt() {
    let st = state();
    let req = request_line("run", "sort", "d", None);
    let clean = handle_line(&st, &req, None);
    assert!(clean.starts_with(r#"{"ok":true"#), "{clean}");
    let key = key_from_response(&clean, "sort");

    // Flip one bit of the cached dictionary segment, in place, exactly
    // as `rtdc-run --inject flip:...` would corrupt a built image.
    let poisoned = st.cache.mutate_entry(&key, |image| {
        let plan = FaultPlan::parse("flip:.dictionary:0:3", image).expect("fault plan");
        plan.apply(image).expect("apply fault");
        // The cached entry must now *provably* fail verification with
        // the typed checksum error — anything else (or success) means
        // the seal does not cover what we corrupted.
        match image.verify_integrity() {
            Err(ImageError::ChecksumMismatch { .. }) => {}
            other => panic!("poisoned image verified as {other:?}"),
        }
    });
    assert!(poisoned, "entry for {key} must be resident");

    // The next request hits the poisoned entry, rejects it, rebuilds,
    // and answers with bytes identical to the clean response: the
    // corruption is observable ONLY in the counters.
    let after = handle_line(&st, &req, None);
    assert_eq!(after, clean, "poisoned cache leaked into a response");
    let s = st.cache.stats();
    assert_eq!(s.poisoned, 1, "rejection must be counted: {s:?}");
    assert_eq!(s.lookups, s.hits + s.misses + s.poisoned);

    // And the rebuilt entry is clean: the following lookup is a plain
    // verified hit.
    let again = handle_line(&st, &req, None);
    assert_eq!(again, clean);
    let s = st.cache.stats();
    assert_eq!((s.poisoned, s.hits), (1, 1), "{s:?}");
}

#[test]
fn truncation_faults_are_rejected_too() {
    let st = state();
    let req = request_line("run", "crc32", "cp+rf", None);
    let clean = handle_line(&st, &req, None);
    assert!(clean.starts_with(r#"{"ok":true"#), "{clean}");
    let key = key_from_response(&clean, "crc32");

    // `trunc` zeroes the tail of a segment from an offset — a larger
    // corruption than a bit flip, same required outcome.
    assert!(st.cache.mutate_entry(&key, |image| {
        let seg = largest_segment(image);
        let plan = FaultPlan::parse(&format!("trunc:{seg}:4"), image).expect("fault plan");
        plan.apply(image).expect("apply fault");
        // Truncation shortens the segment, so the *length* check fires
        // before the CRC ever runs — still a typed rejection, never a
        // silent serve.
        assert!(
            matches!(
                image.verify_integrity(),
                Err(ImageError::LengthMismatch { .. })
            ),
            "truncated image must fail its recorded segment length"
        );
    }));
    let after = handle_line(&st, &req, None);
    assert_eq!(after, clean, "truncated cache entry leaked into a response");
    assert_eq!(st.cache.stats().poisoned, 1);
}

#[test]
fn poisoning_under_concurrent_clients_never_leaks() {
    // Socket-level: clients hammer one key while the test repeatedly
    // poisons the cached entry under them. Every response must equal the
    // clean bytes; every poisoning must be either rejected or already
    // replaced — never served.
    let path = std::env::temp_dir().join(format!("rtdc-serve-poison-{}.sock", std::process::id()));
    let server = Server::start(
        &path,
        ServeConfig {
            threads: 3,
            cache_bytes: 64 << 20,
            max_insns: 2_000_000_000,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let req = request_line("run", "sort", "d2", None);

    let clean = {
        let mut c = Client::connect(&path).expect("connect");
        c.request_raw(&req).expect("request")
    };
    assert!(clean.starts_with(r#"{"ok":true"#), "{clean}");
    let key = key_from_response(&clean, "sort");

    let stop = std::sync::atomic::AtomicBool::new(false);
    let done = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let state = server.state();
        let (stop, done) = (&stop, &done);
        let key = &key;
        // The poisoner: keeps flipping a bit in the cached entry (an odd
        // number of flips corrupts; an even number restores — either
        // way, a reply must carry clean bytes).
        scope.spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                state.cache.mutate_entry(key, |image| {
                    let seg = largest_segment(image);
                    let plan =
                        FaultPlan::parse(&format!("flip:{seg}:1:5"), image).expect("fault plan");
                    plan.apply(image).expect("apply fault");
                });
                std::thread::yield_now();
            }
        });
        for _ in 0..3 {
            let (path, req, clean) = (&path, &req, &clean);
            scope.spawn(move || {
                let mut c = Client::connect(path).expect("connect");
                for _ in 0..30 {
                    let resp = c.request_raw(req).expect("request");
                    assert_eq!(&resp, clean, "a poisoned image was served");
                }
                done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
        // Release the poisoner once every client has finished.
        while done.load(std::sync::atomic::Ordering::Relaxed) < 3 {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // The race itself may or may not have landed an odd flip in front of
    // a lookup; finish with a deterministic poison so the counter path
    // is asserted unconditionally.
    assert!(server.state().cache.mutate_entry(&key, |image| {
        let seg = largest_segment(image);
        let plan = FaultPlan::parse(&format!("flip:{seg}:0:0"), image).expect("fault plan");
        plan.apply(image).expect("apply fault");
    }));
    let mut c = Client::connect(&path).expect("connect");
    let resp = c.request_raw(&req).expect("request");
    assert_eq!(resp, clean, "a poisoned image was served");
    let s = server.state().cache.stats();
    assert!(s.poisoned > 0, "poisoned rejection must be counted: {s:?}");
    assert_eq!(s.lookups, s.hits + s.misses + s.poisoned);
    drop(server);
}
