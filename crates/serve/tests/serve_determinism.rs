//! Concurrency determinism battery: N clients racing the same request
//! set through the socket, in seeded-random interleavings, must each
//! receive responses **byte-identical** to the serial dispatch path —
//! for every registry scheme, with and without the second register file.
//!
//! This is the socket-layer extension of the `jobs_determinism` pattern
//! in `rtdc-cli`: parallelism may reorder *work* (which request builds,
//! which hits the cache, which worker simulates) but never *bytes*.
//! The protocol guarantees responses are pure functions of the request
//! (no wall-clock, no hit/miss flags), so equality is exact, not fuzzy.

use std::collections::BTreeMap;
use std::path::PathBuf;

use rtdc::prelude::Scheme;
use rtdc_rng::Rng64;
use rtdc_serve::client::{request_line, Client};
use rtdc_serve::server::{handle_line, ServeConfig, ServeState, Server};

/// Every image family: native plus each registry scheme x {plain, +rf}.
/// Derived from the registry so a newly added codec is covered without
/// editing this test.
fn all_labels() -> Vec<String> {
    let mut labels = vec!["native".to_string()];
    for s in Scheme::all() {
        labels.push(s.name().to_string());
        labels.push(format!("{}+rf", s.name()));
    }
    labels
}

/// The shared request set: run + trace requests over the two fastest
/// known-answer programs, across every label.
fn request_set() -> Vec<String> {
    let mut reqs = Vec::new();
    for bench in ["sort", "crc32"] {
        for label in all_labels() {
            reqs.push(request_line("run", bench, &label, None));
        }
    }
    // A few trace requests ride along: counting sinks must be just as
    // deterministic as plain stats.
    for label in ["native", "d", "cp+rf"] {
        reqs.push(request_line("trace", "sort", label, None));
    }
    reqs
}

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rtdc-serve-det-{tag}-{}.sock", std::process::id()))
}

#[test]
fn racing_clients_get_bytes_identical_to_serial() {
    let requests = request_set();

    // Serial reference: a fresh state, each request dispatched once, in
    // order, single-threaded. This is exactly what the batch CLI does.
    let serial_state = ServeState::new(&ServeConfig {
        threads: 1,
        cache_bytes: 0, // no cache at all on the reference path
        max_insns: 2_000_000_000,
        ..ServeConfig::default()
    });
    let expected: BTreeMap<&str, String> = requests
        .iter()
        .map(|r| (r.as_str(), handle_line(&serial_state, r, None)))
        .collect();
    for (req, resp) in &expected {
        assert!(
            resp.starts_with(r#"{"ok":true"#),
            "serial reference failed for `{req}`: {resp}"
        );
    }

    // Concurrent: one server, N clients, each replaying the full set
    // twice in its own seeded-random order. Interleavings differ every
    // run; the bytes must not.
    let path = socket_path("race");
    let server = Server::start(
        &path,
        ServeConfig {
            threads: 4,
            cache_bytes: 64 << 20,
            max_insns: 2_000_000_000,
            ..ServeConfig::default()
        },
    )
    .expect("start server");

    const CLIENTS: usize = 6;
    std::thread::scope(|scope| {
        for id in 0..CLIENTS {
            let requests = &requests;
            let expected = &expected;
            let path = &path;
            scope.spawn(move || {
                let mut rng = Rng64::seed_from_u64(0xDE7E_0000 + id as u64);
                let mut order: Vec<&String> = requests.iter().collect();
                let mut c = Client::connect(path).expect("connect");
                for pass in 0..2 {
                    rng.shuffle(&mut order);
                    for req in &order {
                        let resp = c.request_raw(req).expect("request");
                        assert_eq!(
                            &resp,
                            &expected[req.as_str()],
                            "client {id} pass {pass}: `{req}` diverged from serial"
                        );
                    }
                }
            });
        }
    });

    // Every lookup either hit or missed; the cache held one entry per
    // distinct image and the interleaving decided nothing visible.
    let stats = server.state().cache.stats();
    assert_eq!(stats.lookups, stats.hits + stats.misses + stats.poisoned);
    assert_eq!(stats.poisoned, 0);
    assert!(
        stats.hits > stats.misses,
        "with {CLIENTS} clients x 2 passes most lookups must hit ({stats:?})"
    );
    drop(server);
}

#[test]
fn server_stats_match_direct_runner_for_every_scheme() {
    use rtdc::prelude::*;

    // Anchor the serial reference itself: the daemon's `run` stats equal
    // `run_image` on a locally built image, per scheme x rf.
    let state = ServeState::new(&ServeConfig {
        threads: 1,
        cache_bytes: 16 << 20,
        max_insns: 2_000_000_000,
        ..ServeConfig::default()
    });
    let program = rtdc_workloads::programs::all_programs()
        .into_iter()
        .find(|p| p.name == "sort")
        .expect("sort exists");
    let n = program.procedures.len();
    let cfg = rtdc_sim::SimConfig::hpca2000_baseline();
    for scheme in Scheme::all() {
        for rf in [false, true] {
            let label = format!("{}{}", scheme.name(), if rf { "+rf" } else { "" });
            let resp = handle_line(&state, &request_line("run", "sort", &label, None), None);
            let v = rtdc_serve::json::parse(&resp).expect("response is JSON");
            let got = rtdc_serve::protocol::parse_stats(v.get("stats").expect("stats"))
                .expect("stats parse");
            let plan = CompressionPlan::uniform(
                scheme,
                rf,
                PlanSource::Heuristic,
                &Selection::all_compressed(n),
            );
            let image = build_planned(&program, &plan).expect("build");
            let want = run_image(&image, cfg, 2_000_000_000).expect("run");
            assert_eq!(got, want.stats, "stats diverged for sort/{label}");
        }
    }
}
