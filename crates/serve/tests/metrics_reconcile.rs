//! Telemetry reconciliation battery: the `metrics` op's registry view
//! must agree **exactly** with the daemon's internal counters — the
//! cache's own `CacheStats`, the pool's job accounting, and the request
//! log the clients kept — after an eviction-stress workload. A registry
//! that drifts from the source of truth is worse than no registry.
//!
//! Everything here goes through the socket: the properties under test
//! include the protocol rendering, not just the in-process registry.

use std::sync::atomic::{AtomicU64, Ordering};

use rtdc_rng::Rng64;
use rtdc_serve::client::{parse_histogram, request_line, Client};
use rtdc_serve::json::Json;
use rtdc_serve::server::{ServeConfig, Server};

const CLIENTS: usize = 6;
const PER_CLIENT: usize = 20;

fn gauge(m: &Json, name: &str) -> u64 {
    m.get("gauges")
        .and_then(|g| g.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("metrics missing gauge `{name}`"))
}

fn counter(m: &Json, name: &str) -> u64 {
    m.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("metrics missing counter `{name}`"))
}

#[test]
fn registry_reconciles_with_cache_and_pool_after_eviction_stress() {
    // A few-KB budget on real images: constant LRU churn, so the
    // reconciliation covers evictions and single-flight waits, not just
    // the happy path.
    let path = std::env::temp_dir().join(format!("rtdc-serve-mrec-{}.sock", std::process::id()));
    let server = Server::start(
        &path,
        ServeConfig {
            threads: 2,
            cache_bytes: 6 << 10,
            max_insns: 2_000_000_000,
            ..ServeConfig::default()
        },
    )
    .expect("start server");

    let sent = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for id in 0..CLIENTS {
            let path = &path;
            let sent = &sent;
            scope.spawn(move || {
                let mut rng = Rng64::seed_from_u64(0x0B5_0000 + id as u64);
                let mut c = Client::connect(path).expect("connect");
                let benches = ["sort", "crc32", "matmul", "strsearch"];
                let labels = ["native", "d", "d+rf", "cp", "d2", "lz"];
                for _ in 0..PER_CLIENT {
                    let bench = rng.choose(&benches);
                    let label = rng.choose(&labels);
                    let resp = c
                        .request_raw(&request_line("build", bench, label, None))
                        .expect("request");
                    assert!(resp.starts_with(r#"{"ok":true"#), "{resp}");
                    sent.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let total = sent.load(Ordering::Relaxed);
    assert_eq!(total, (CLIENTS * PER_CLIENT) as u64);

    let mut c = Client::connect(&path).expect("connect");
    let resp = c.metrics().expect("metrics op");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let m = resp.get("metrics").expect("metrics payload");

    // Request counters vs the client-side log.
    assert_eq!(counter(m, "serve.req.build"), total);
    assert_eq!(counter(m, "serve.req.metrics"), 1);
    assert_eq!(counter(m, "serve.err.total"), 0);
    assert!(counter(m, "serve.bytes_in") > 0);
    assert!(counter(m, "serve.bytes_out") > 0);

    // Cache gauges vs the cache's own counters. No cache activity can
    // happen between the snapshot and this read (the only live client
    // is ours, and `metrics` touches no images), so equality is exact.
    let s = server.state().cache.stats();
    for (name, want) in [
        ("lookups", s.lookups),
        ("hits", s.hits),
        ("misses", s.misses),
        ("poisoned", s.poisoned),
        ("inserts", s.inserts),
        ("evictions", s.evictions),
        ("uncached", s.uncached),
        ("build_failures", s.build_failures),
        ("flight_waits", s.flight_waits),
        ("entries", s.entries),
        ("resident_bytes", s.resident_bytes),
        ("budget_bytes", s.budget_bytes),
    ] {
        assert_eq!(
            gauge(m, &format!("serve.cache.{name}")),
            want,
            "cache gauge `{name}` drifted from CacheStats {s:?}"
        );
    }
    // And the cache's own invariants hold in the mirrored view.
    assert_eq!(
        gauge(m, "serve.cache.lookups"),
        gauge(m, "serve.cache.hits")
            + gauge(m, "serve.cache.misses")
            + gauge(m, "serve.cache.poisoned")
    );
    assert!(
        gauge(m, "serve.cache.evictions") > 0,
        "tiny budget must evict"
    );

    // Pool gauges: the snapshot is taken from inside the metrics job,
    // so that job is in flight. A worker retires its accounting
    // (`in_flight-- / executed++`) *after* the reply is produced, so
    // the other worker may still hold one stress-phase straggler.
    assert_eq!(gauge(m, "serve.pool.threads"), 2);
    assert_eq!(gauge(m, "serve.pool.queued"), total + 1);
    let executed = gauge(m, "serve.pool.executed");
    assert!(
        (total - 1..=total).contains(&executed),
        "executed {executed} vs {total} submitted"
    );
    assert!(gauge(m, "serve.pool.in_flight") >= 1);
    assert!(gauge(m, "serve.pool.queue_depth") <= 1);
    assert_eq!(gauge(m, "serve.pool.panics"), 0);

    // Service-time histogram: one observation per build, buckets
    // summing exactly to the count.
    let h = m
        .get("histograms")
        .and_then(|h| h.get("serve.op.build.us"))
        .and_then(parse_histogram)
        .expect("build histogram");
    assert_eq!(h.count, total);
    assert_eq!(h.count, h.buckets.iter().map(|&(_, n)| n).sum::<u64>());
    assert!(h.quantile(0.99).is_some());

    // The pool's wall histogram saw every retired job (same possible
    // straggler as `executed`).
    let wall = m
        .get("histograms")
        .and_then(|h| h.get("serve.pool.job_wall.us"))
        .and_then(parse_histogram)
        .expect("pool wall histogram");
    assert!(
        (total - 1..=total).contains(&wall.count),
        "wall count {} vs {total}",
        wall.count
    );

    drop(server);
}

#[test]
fn metrics_text_format_and_stats_uptime_agree() {
    let path = std::env::temp_dir().join(format!("rtdc-serve-mtxt-{}.sock", std::process::id()));
    let server = Server::start(&path, ServeConfig::default()).expect("start server");
    let mut c = Client::connect(&path).expect("connect");
    let resp = c
        .request(&request_line("build", "sort", "d", None))
        .expect("build");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));

    // `stats` and `metrics` report the same birth time; uptime counts.
    let stats = c.request(r#"{"op":"stats"}"#).expect("stats");
    let started_at = stats
        .get("started_at")
        .and_then(Json::as_u64)
        .expect("stats started_at");
    assert!(stats.get("uptime_seconds").and_then(Json::as_u64).is_some());
    let metrics = c.metrics().expect("metrics");
    assert_eq!(
        metrics.get("started_at").and_then(Json::as_u64),
        Some(started_at)
    );

    // Prometheus text exposition over the same socket.
    let text_resp = c
        .request(r#"{"op":"metrics","format":"text"}"#)
        .expect("metrics text");
    let text = text_resp
        .get("text")
        .and_then(Json::as_str)
        .expect("text field");
    assert!(text.contains("# TYPE serve_req_build counter\nserve_req_build 1\n"));
    assert!(text.contains("# TYPE serve_cache_hits gauge\n"));
    assert!(text.contains("serve_op_build_us_bucket{le=\"+Inf\"} 1\n"));
    assert!(text.contains("serve_op_build_us_count 1\n"));

    // The pure ops stay pure: a second identical build responds
    // byte-identically even though telemetry advanced in between.
    let again = c
        .request_raw(&request_line("build", "sort", "d", None))
        .expect("build again");
    let first = c
        .request_raw(&request_line("build", "sort", "d", None))
        .expect("build third");
    assert_eq!(again, first, "telemetry must not leak into responses");
    drop(server);
}
