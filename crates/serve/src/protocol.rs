//! The `rtdc-serve` wire protocol: newline-delimited JSON.
//!
//! One request object per line in, one response object per line out, on
//! a Unix domain socket. Five operations mirror the batch CLI:
//!
//! | op      | what it does                                            |
//! |---------|---------------------------------------------------------|
//! | `build` | build (or fetch from cache) an image; report its sizes  |
//! | `run`   | build/fetch, then run to completion; report exact stats |
//! | `trace` | run with an event-counting sink; report event counts    |
//! | `plan`  | run the closed-loop optimizer; return the plan text     |
//! | `stats` | server/cache counters (the only cache-visible op)       |
//! | `metrics` | full telemetry snapshot (JSON, or Prometheus text)    |
//!
//! plus `shutdown` for orderly teardown. Responses to `build`, `run`,
//! `trace`, and `plan` are **pure functions of the request** — they carry
//! no wall-clock, no cache hit/miss flag, nothing host- or
//! history-dependent — which is what lets the determinism battery demand
//! byte-identical responses under any client interleaving. Cache
//! behavior is observable only through `stats` (and the daemon's stderr
//! log).
//!
//! Every rejection is a typed [`ServeError`] rendered as
//! `{"ok":false,"error":"<kind>","detail":"..."}`; the fuzz battery
//! asserts malformed input can produce nothing else.

use std::fmt;

use rtdc_sim::Stats;

use crate::json::{self, Json, ObjWriter};

/// Hard cap on a request line, in bytes. A line longer than this is
/// rejected with [`ServeError::OversizedLine`] *without buffering it*:
/// the reader discards to the next newline. Plans for the largest
/// benchmark serialize to ~100 KB, so the cap leaves generous headroom.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// What an image is built from: a uniform scheme selection or an
/// explicit plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildSpec {
    /// Native, uncompressed.
    Native,
    /// A registry scheme (with handler variant), all procedures
    /// compressed — the `--scheme` CLI path.
    Uniform {
        /// Registry scheme name (`"d"`, `"cp"`, ...).
        scheme: String,
        /// Second-register-file handler variant.
        rf: bool,
    },
    /// An explicit `rtdc-plan v1` plan (canonical text, embedded in the
    /// request as a JSON string) — the `--plan` CLI path.
    Plan {
        /// The plan text.
        text: String,
    },
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Build an image and report its sizes.
    Build {
        /// Benchmark or known-answer program name.
        bench: String,
        /// What to build.
        spec: BuildSpec,
        /// Client-supplied deadline budget, measured from admission.
        deadline_ms: Option<u64>,
    },
    /// Build (or fetch) and run to completion.
    Run {
        /// Benchmark or known-answer program name.
        bench: String,
        /// What to build.
        spec: BuildSpec,
        /// Instruction limit override (default: the server's).
        max_insns: Option<u64>,
        /// Client-supplied deadline budget, measured from admission.
        deadline_ms: Option<u64>,
    },
    /// Build (or fetch) and run with an event-counting trace sink.
    Trace {
        /// Benchmark or known-answer program name.
        bench: String,
        /// What to build.
        spec: BuildSpec,
        /// Instruction limit override.
        max_insns: Option<u64>,
        /// Client-supplied deadline budget, measured from admission.
        deadline_ms: Option<u64>,
    },
    /// Run the closed-loop plan optimizer for a benchmark × scheme.
    Plan {
        /// Benchmark analog name (known-answer programs have no spec to
        /// optimize against and are rejected).
        bench: String,
        /// Registry scheme name.
        scheme: String,
        /// Second-register-file handler variant.
        rf: bool,
        /// Client-supplied deadline budget, measured from admission.
        deadline_ms: Option<u64>,
    },
    /// Server and cache counters.
    Stats,
    /// Full telemetry snapshot from the daemon's metrics registry.
    Metrics {
        /// Response format.
        format: MetricsFormat,
    },
    /// Orderly shutdown.
    Shutdown,
}

impl Request {
    /// The client-supplied deadline budget, if any (work ops only;
    /// `stats`/`metrics`/`shutdown` are cheap and never time out).
    pub fn deadline_ms(&self) -> Option<u64> {
        match self {
            Request::Build { deadline_ms, .. }
            | Request::Run { deadline_ms, .. }
            | Request::Trace { deadline_ms, .. }
            | Request::Plan { deadline_ms, .. } => *deadline_ms,
            Request::Stats | Request::Metrics { .. } | Request::Shutdown => None,
        }
    }
}

/// How a `metrics` response renders the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// A nested JSON object (`"metrics"` field of the response) —
    /// what `rtdc-top` and `servebench` consume.
    Json,
    /// Prometheus text exposition 0.0.4, embedded as the `"text"`
    /// string field — what external scrapers consume (via
    /// `rtdc-serve --metrics-dump`).
    Text,
}

/// Typed request-level failures, each with a stable wire kind.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request line exceeded [`MAX_LINE_BYTES`].
    OversizedLine {
        /// The configured cap.
        limit: usize,
    },
    /// The line was not valid JSON.
    BadJson {
        /// Parser diagnostic.
        detail: String,
    },
    /// The line was JSON but not a valid request object.
    BadRequest {
        /// What was missing or malformed.
        detail: String,
    },
    /// `op` named no known operation.
    UnknownOp {
        /// The offending op.
        op: String,
    },
    /// `bench` named no benchmark analog or known-answer program.
    UnknownBench {
        /// The offending name.
        bench: String,
    },
    /// `scheme` named no registered scheme.
    UnknownScheme {
        /// The offending name.
        scheme: String,
    },
    /// An embedded plan failed to parse or validate.
    BadPlan {
        /// The plan error.
        detail: String,
    },
    /// Building the image failed.
    BuildFailed {
        /// The build error.
        detail: String,
    },
    /// Running the image failed.
    RunFailed {
        /// The run error.
        detail: String,
    },
    /// The request is structurally valid but not supported for this
    /// target (e.g. `plan` for a known-answer program).
    Unsupported {
        /// Why.
        detail: String,
    },
    /// The admission queue is full; the request was shed without being
    /// queued. Retryable: the work was never started.
    Overloaded {
        /// Queue depth at shed time.
        queue_depth: u64,
        /// The configured admission limit.
        limit: u64,
    },
    /// The request's `deadline_ms` budget expired before a result was
    /// produced (at dequeue, or between build and run phases).
    Timeout {
        /// The budget that expired.
        deadline_ms: u64,
    },
}

impl ServeError {
    /// The stable wire kind (`"error"` field of the response).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::OversizedLine { .. } => "oversized-line",
            ServeError::BadJson { .. } => "bad-json",
            ServeError::BadRequest { .. } => "bad-request",
            ServeError::UnknownOp { .. } => "unknown-op",
            ServeError::UnknownBench { .. } => "unknown-bench",
            ServeError::UnknownScheme { .. } => "unknown-scheme",
            ServeError::BadPlan { .. } => "bad-plan",
            ServeError::BuildFailed { .. } => "build-failed",
            ServeError::RunFailed { .. } => "run-failed",
            ServeError::Unsupported { .. } => "unsupported",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Timeout { .. } => "timeout",
        }
    }

    /// The human-readable detail.
    pub fn detail(&self) -> String {
        match self {
            ServeError::OversizedLine { limit } => {
                format!("request line exceeds {limit} bytes")
            }
            ServeError::BadJson { detail }
            | ServeError::BadRequest { detail }
            | ServeError::BadPlan { detail }
            | ServeError::BuildFailed { detail }
            | ServeError::RunFailed { detail }
            | ServeError::Unsupported { detail } => detail.clone(),
            ServeError::UnknownOp { op } => {
                format!("unknown op `{op}` (build|run|trace|plan|stats|metrics|shutdown)")
            }
            ServeError::UnknownBench { bench } => {
                format!("unknown benchmark `{bench}`")
            }
            ServeError::UnknownScheme { scheme } => {
                format!("unknown scheme `{scheme}`")
            }
            ServeError::Overloaded { queue_depth, limit } => {
                format!("admission queue full ({queue_depth} >= {limit}); retry with backoff")
            }
            ServeError::Timeout { deadline_ms } => {
                format!("deadline of {deadline_ms} ms exceeded")
            }
        }
    }

    /// Renders the error response line.
    pub fn render(&self) -> String {
        let mut w = ObjWriter::new();
        w.bool("ok", false)
            .str("error", self.kind())
            .str("detail", &self.detail());
        w.finish()
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

impl std::error::Error for ServeError {}

/// Extracts the build spec from a request object: `scheme` (with
/// optional `+rf`) or an embedded `plan`, mutually exclusive; neither
/// means native.
fn build_spec(obj: &Json) -> Result<BuildSpec, ServeError> {
    let scheme = obj.get("scheme");
    let plan = obj.get("plan");
    match (scheme, plan) {
        (Some(_), Some(_)) => Err(ServeError::BadRequest {
            detail: "`scheme` and `plan` are mutually exclusive".into(),
        }),
        (None, None) => Ok(BuildSpec::Native),
        (Some(s), None) => {
            let arg = s.as_str().ok_or_else(|| ServeError::BadRequest {
                detail: "`scheme` must be a string".into(),
            })?;
            if arg == "native" {
                return Ok(BuildSpec::Native);
            }
            let (name, rf) = match arg.strip_suffix("+rf") {
                Some(base) => (base, true),
                None => (arg, false),
            };
            Ok(BuildSpec::Uniform {
                scheme: name.to_string(),
                rf,
            })
        }
        (None, Some(p)) => {
            let text = p.as_str().ok_or_else(|| ServeError::BadRequest {
                detail: "`plan` must be a string".into(),
            })?;
            Ok(BuildSpec::Plan {
                text: text.to_string(),
            })
        }
    }
}

fn bench_field(obj: &Json) -> Result<String, ServeError> {
    obj.get("bench")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ServeError::BadRequest {
            detail: "missing string field `bench`".into(),
        })
}

fn max_insns_field(obj: &Json) -> Result<Option<u64>, ServeError> {
    match obj.get("max_insns") {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| ServeError::BadRequest {
            detail: "`max_insns` must be a non-negative integer".into(),
        }),
    }
}

fn deadline_field(obj: &Json) -> Result<Option<u64>, ServeError> {
    match obj.get("deadline_ms") {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(ms) if ms > 0 => Ok(Some(ms)),
            _ => Err(ServeError::BadRequest {
                detail: "`deadline_ms` must be a positive integer".into(),
            }),
        },
    }
}

/// Parses one request line (already length-checked by the reader).
///
/// # Errors
///
/// A typed [`ServeError`] — never a panic — for any byte sequence.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let obj = json::parse(line).map_err(|e| ServeError::BadJson {
        detail: e.to_string(),
    })?;
    if !matches!(obj, Json::Obj(_)) {
        return Err(ServeError::BadRequest {
            detail: "request must be a JSON object".into(),
        });
    }
    let op = obj
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest {
            detail: "missing string field `op`".into(),
        })?;
    match op {
        "build" => Ok(Request::Build {
            bench: bench_field(&obj)?,
            spec: build_spec(&obj)?,
            deadline_ms: deadline_field(&obj)?,
        }),
        "run" => Ok(Request::Run {
            bench: bench_field(&obj)?,
            spec: build_spec(&obj)?,
            max_insns: max_insns_field(&obj)?,
            deadline_ms: deadline_field(&obj)?,
        }),
        "trace" => Ok(Request::Trace {
            bench: bench_field(&obj)?,
            spec: build_spec(&obj)?,
            max_insns: max_insns_field(&obj)?,
            deadline_ms: deadline_field(&obj)?,
        }),
        "plan" => {
            let bench = bench_field(&obj)?;
            let arg =
                obj.get("scheme")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ServeError::BadRequest {
                        detail: "`plan` op needs a string field `scheme`".into(),
                    })?;
            let (scheme, rf) = match arg.strip_suffix("+rf") {
                Some(base) => (base.to_string(), true),
                None => (arg.to_string(), false),
            };
            Ok(Request::Plan {
                bench,
                scheme,
                rf,
                deadline_ms: deadline_field(&obj)?,
            })
        }
        "stats" => Ok(Request::Stats),
        "metrics" => {
            let format = match obj.get("format") {
                None => MetricsFormat::Json,
                Some(v) => match v.as_str() {
                    Some("json") => MetricsFormat::Json,
                    Some("text") => MetricsFormat::Text,
                    _ => {
                        return Err(ServeError::BadRequest {
                            detail: "`format` must be \"json\" or \"text\"".into(),
                        })
                    }
                },
            };
            Ok(Request::Metrics { format })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServeError::UnknownOp {
            op: other.to_string(),
        }),
    }
}

/// Renders a [`Stats`] as a nested JSON object, every field, in
/// declaration order. Deterministic across hosts: these are simulated
/// quantities only.
pub fn stats_json(s: &Stats) -> String {
    let b = s.stalls;
    let mut w = ObjWriter::new();
    w.u64("insns", s.insns)
        .u64("program_insns", s.program_insns)
        .u64("handler_insns", s.handler_insns)
        .u64("cycles", s.cycles)
        .u64("ifetches", s.ifetches)
        .u64("imisses", s.imisses)
        .u64("imisses_native", s.imisses_native)
        .u64("imisses_compressed", s.imisses_compressed)
        .u64("daccesses", s.daccesses)
        .u64("dmisses", s.dmisses)
        .u64("writebacks", s.writebacks)
        .u64("branches", s.branches)
        .u64("mispredicts", s.mispredicts)
        .u64("reg_jumps", s.reg_jumps)
        .u64("reg_jump_misses", s.reg_jump_misses)
        .u64("exceptions", s.exceptions)
        .u64("swics", s.swics)
        .u64("handler_cycles", s.handler_cycles)
        .u64("stall_imiss", b.imiss)
        .u64("stall_dmiss", b.dmiss)
        .u64("stall_branch", b.branch)
        .u64("stall_regjump", b.reg_jump)
        .u64("stall_loaduse", b.load_use)
        .u64("stall_hilo", b.hilo)
        .u64("stall_swic", b.swic)
        .u64("stall_exception", b.exception);
    w.finish()
}

/// Reconstructs a [`Stats`] from the object [`stats_json`] rendered —
/// the client half of the `rtdc-run --serve` path.
pub fn parse_stats(v: &Json) -> Option<Stats> {
    let f = |key: &str| v.get(key).and_then(Json::as_u64);
    Some(Stats {
        insns: f("insns")?,
        program_insns: f("program_insns")?,
        handler_insns: f("handler_insns")?,
        cycles: f("cycles")?,
        ifetches: f("ifetches")?,
        imisses: f("imisses")?,
        imisses_native: f("imisses_native")?,
        imisses_compressed: f("imisses_compressed")?,
        daccesses: f("daccesses")?,
        dmisses: f("dmisses")?,
        writebacks: f("writebacks")?,
        branches: f("branches")?,
        mispredicts: f("mispredicts")?,
        reg_jumps: f("reg_jumps")?,
        reg_jump_misses: f("reg_jump_misses")?,
        exceptions: f("exceptions")?,
        swics: f("swics")?,
        handler_cycles: f("handler_cycles")?,
        stalls: rtdc_sim::StallBreakdown {
            imiss: f("stall_imiss")?,
            dmiss: f("stall_dmiss")?,
            branch: f("stall_branch")?,
            reg_jump: f("stall_regjump")?,
            load_use: f("stall_loaduse")?,
            hilo: f("stall_hilo")?,
            swic: f("stall_swic")?,
            exception: f("stall_exception")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_five_ops() {
        assert_eq!(
            parse_request(r#"{"op":"run","bench":"sort","scheme":"d+rf"}"#).unwrap(),
            Request::Run {
                bench: "sort".into(),
                spec: BuildSpec::Uniform {
                    scheme: "d".into(),
                    rf: true
                },
                max_insns: None,
                deadline_ms: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"build","bench":"sort"}"#).unwrap(),
            Request::Build {
                bench: "sort".into(),
                spec: BuildSpec::Native,
                deadline_ms: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"plan","bench":"go","scheme":"cp"}"#).unwrap(),
            Request::Plan {
                bench: "go".into(),
                scheme: "cp".into(),
                rf: false,
                deadline_ms: None,
            }
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn metrics_op_parses_both_formats() {
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics {
                format: MetricsFormat::Json
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","format":"text"}"#).unwrap(),
            Request::Metrics {
                format: MetricsFormat::Text
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","format":"xml"}"#)
                .unwrap_err()
                .kind(),
            "bad-request"
        );
    }

    #[test]
    fn rejections_are_typed() {
        let cases = [
            ("{", "bad-json"),
            ("[1,2]", "bad-request"),
            (r#"{"op":"fly"}"#, "unknown-op"),
            (r#"{"op":"run"}"#, "bad-request"),
            (
                r#"{"op":"run","bench":"sort","scheme":"d","plan":"x"}"#,
                "bad-request",
            ),
            (
                r#"{"op":"run","bench":"sort","max_insns":-3}"#,
                "bad-request",
            ),
            (r#"{"op":"plan","bench":"go"}"#, "bad-request"),
            (
                r#"{"op":"run","bench":"sort","deadline_ms":0}"#,
                "bad-request",
            ),
            (
                r#"{"op":"run","bench":"sort","deadline_ms":"soon"}"#,
                "bad-request",
            ),
        ];
        for (line, kind) in cases {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.kind(), kind, "line `{line}` -> {err}");
            let rendered = err.render();
            assert!(
                rendered.starts_with(r#"{"ok":false,"error":"#),
                "{rendered}"
            );
            assert!(
                json::parse(&rendered).is_ok(),
                "error response must be JSON"
            );
        }
    }

    #[test]
    fn deadline_is_parsed_and_overload_errors_are_typed() {
        let req = parse_request(r#"{"op":"run","bench":"sort","deadline_ms":250}"#).unwrap();
        assert_eq!(req.deadline_ms(), Some(250));
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#).unwrap().deadline_ms(),
            None
        );
        let o = ServeError::Overloaded {
            queue_depth: 9,
            limit: 8,
        };
        assert_eq!(o.kind(), "overloaded");
        assert!(json::parse(&o.render()).is_ok());
        let t = ServeError::Timeout { deadline_ms: 250 };
        assert_eq!(t.kind(), "timeout");
        assert!(json::parse(&t.render()).is_ok());
    }

    #[test]
    fn stats_round_trip_is_exact() {
        let mut s = Stats {
            insns: 123,
            cycles: 456,
            exceptions: 7,
            ..Default::default()
        };
        s.stalls.swic = 9;
        let rendered = stats_json(&s);
        let back = parse_stats(&json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
