//! The content-addressed image cache: build once, serve many.
//!
//! Every `build`/`run`/`trace` request resolves to a [`CacheKey`] —
//! `(benchmark, scheme label, plan digest)` — before anything is built.
//! The plan digest ([`CompressionPlan::digest`]) covers exactly the
//! fields that determine the image bytes, so two requests whose plans
//! make identical decisions share an entry regardless of how those plans
//! were obtained; the segment CRCs PR 5 seals into every image make the
//! cached value *checkable*, not just addressable.
//!
//! Three properties the concurrency battery holds the cache to:
//!
//! * **verify-on-hit** — every hit re-runs
//!   [`MemoryImage::verify_integrity`] before the image is served. A
//!   poisoned entry (whatever corrupted it) is evicted and rebuilt, and
//!   the rejection is counted; a corrupt image is *never* served.
//! * **single-flight** — concurrent misses on one key build once;
//!   late arrivals wait on a condvar and are served the insert (counted
//!   as hits: they did not build). A builder that fails or panics
//!   releases the flight so waiters retry rather than deadlock.
//! * **byte-budgeted LRU** — resident bytes
//!   ([`MemoryImage::resident_bytes`]) never exceed the budget: inserts
//!   evict least-recently-used entries first, and an image larger than
//!   the whole budget is served but never cached (`uncached`).
//!
//! The counters reconcile exactly, and the stress battery asserts it:
//! `lookups == hits + misses + poisoned`, and
//! `entries == inserts − evictions − poisoned`.
//!
//! With a [`DiskStore`] attached ([`ImageCache::with_store`]), misses
//! probe the store before building — a verified disk file is served as
//! an [`Outcome::StoreHit`] (counted in `hits` and `store_hits`) — and
//! every fresh build is spilled so the next daemon on the same
//! `--cache-dir` starts warm. Nothing a store yields has skipped
//! verification: the load path re-runs `verify_integrity()` and
//! quarantines failures.
//!
//! [`CompressionPlan::digest`]: rtdc::plan::CompressionPlan::digest
//! [`MemoryImage::verify_integrity`]: rtdc::image::MemoryImage::verify_integrity
//! [`MemoryImage::resident_bytes`]: rtdc::image::MemoryImage::resident_bytes

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};

use rtdc::image::MemoryImage;

use crate::protocol::ServeError;
use crate::store::DiskStore;

/// The content address of a cached image.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Benchmark or known-answer program name.
    pub bench: String,
    /// Scheme label (`native`, `d`, `cp+rf`, `d+plan`, ...).
    pub label: String,
    /// [`CompressionPlan::digest`] of the driving plan (0 for native
    /// images, which have no plan).
    ///
    /// [`CompressionPlan::digest`]: rtdc::plan::CompressionPlan::digest
    pub plan_digest: u32,
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{:08x}", self.bench, self.label, self.plan_digest)
    }
}

/// How a lookup resolved (logged, never put in a response — responses
/// must be pure functions of the request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served from cache, integrity verified.
    Hit,
    /// Not resident, but recovered from the disk store (decoded and
    /// integrity-verified) without building. Counted as a hit.
    StoreHit,
    /// Not cached; this request built the image.
    Miss,
    /// Cached but failed integrity verification; the entry was evicted
    /// and this request rebuilt the image.
    Poisoned,
}

/// A snapshot of the cache counters (the `stats` op's `cache` object).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups through [`ImageCache::get_or_build`].
    pub lookups: u64,
    /// Lookups served from cache (verified). Includes `store_hits`.
    pub hits: u64,
    /// The subset of `hits` recovered from the disk store rather than
    /// resident memory.
    pub store_hits: u64,
    /// Lookups that built because nothing was cached.
    pub misses: u64,
    /// Lookups that found a cached entry failing verification
    /// (the entry was evicted and rebuilt).
    pub poisoned: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries removed by LRU byte pressure.
    pub evictions: u64,
    /// Successful builds too large for the budget, served uncached.
    pub uncached: u64,
    /// Builds that returned an error.
    pub build_failures: u64,
    /// Times a lookup blocked on another thread's in-flight build of
    /// the same key (each wake-up from the condvar counts once; the
    /// served lookup still resolves as a hit/miss/poisoned outcome).
    pub flight_waits: u64,
    /// Entries resident now.
    pub entries: u64,
    /// Bytes resident now.
    pub resident_bytes: u64,
    /// The configured budget.
    pub budget_bytes: u64,
}

struct Entry {
    image: Arc<MemoryImage>,
    bytes: u64,
    last_use: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    building: HashSet<CacheKey>,
    tick: u64,
    bytes: u64,
    lookups: u64,
    hits: u64,
    store_hits: u64,
    misses: u64,
    poisoned: u64,
    inserts: u64,
    evictions: u64,
    uncached: u64,
    build_failures: u64,
    flight_waits: u64,
}

impl Inner {
    /// Evicts least-recently-used entries until `bytes <= budget`,
    /// never evicting `keep` (the entry being inserted, which is MRU by
    /// definition and guaranteed to fit on its own).
    fn evict_to(&mut self, budget: u64, keep: &CacheKey) {
        while self.bytes > budget {
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            let removed = self.map.remove(&victim).expect("victim just found");
            self.bytes -= removed.bytes;
            self.evictions += 1;
        }
    }
}

/// The concurrent content-addressed image cache.
pub struct ImageCache {
    inner: Mutex<Inner>,
    flights: Condvar,
    budget: u64,
    store: Option<Arc<DiskStore>>,
}

impl ImageCache {
    /// An empty cache holding at most `budget_bytes` of resident images.
    /// A budget of 0 disables caching entirely (every lookup misses and
    /// nothing is inserted) — the servebench "cold" configuration.
    pub fn new(budget_bytes: u64) -> ImageCache {
        ImageCache {
            inner: Mutex::new(Inner::default()),
            flights: Condvar::new(),
            budget: budget_bytes,
            store: None,
        }
    }

    /// Like [`ImageCache::new`], backed by a persistent [`DiskStore`]:
    /// misses probe the store before building (a verified disk file is
    /// a [`Outcome::StoreHit`]), and every fresh build is spilled so the
    /// next daemon on this store starts warm.
    pub fn with_store(budget_bytes: u64, store: Arc<DiskStore>) -> ImageCache {
        ImageCache {
            store: Some(store),
            ..ImageCache::new(budget_bytes)
        }
    }

    /// The backing disk store, if one is attached.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.store.as_ref()
    }

    /// Serves `key` from cache, or builds it with `build` exactly once
    /// per flight. Returns the image and how the lookup resolved.
    ///
    /// The cache lock is **not** held while building or while verifying
    /// a hit's CRCs, so independent keys build and verify concurrently.
    ///
    /// # Errors
    ///
    /// Whatever `build` returns; the flight is released either way.
    pub fn get_or_build(
        &self,
        key: &CacheKey,
        build: impl FnOnce() -> Result<MemoryImage, ServeError>,
    ) -> Result<(Arc<MemoryImage>, Outcome), ServeError> {
        let mut poisoned_here = false;
        let mut guard = self.inner.lock().expect("cache lock");
        guard.lookups += 1;
        loop {
            if guard.map.contains_key(key) {
                guard.tick += 1;
                let tick = guard.tick;
                let entry = guard.map.get_mut(key).expect("entry just found");
                entry.last_use = tick;
                let image = Arc::clone(&entry.image);
                drop(guard);
                if image.verify_integrity().is_ok() {
                    let mut g = self.inner.lock().expect("cache lock");
                    g.hits += 1;
                    return Ok((image, Outcome::Hit));
                }
                // Poisoned: evict exactly the entry we verified (another
                // thread may have already replaced it) and rebuild.
                guard = self.inner.lock().expect("cache lock");
                if let Some(entry) = guard.map.get(key) {
                    if Arc::ptr_eq(&entry.image, &image) {
                        let removed = guard.map.remove(key).expect("entry present");
                        guard.bytes -= removed.bytes;
                        guard.poisoned += 1;
                        poisoned_here = true;
                    }
                }
                if !poisoned_here {
                    // Someone else already evicted/replaced it; retry the
                    // lookup from scratch (this lookup is not yet counted
                    // as any outcome).
                    continue;
                }
                // Fall through to the build path below.
            }
            if guard.building.contains(key) {
                guard.flight_waits += 1;
                guard = self.flights.wait(guard).expect("cache lock");
                continue;
            }
            guard.building.insert(key.clone());
            break;
        }
        drop(guard);

        // Build without the lock. The guard releases the flight even if
        // `build` panics, so waiters retry instead of deadlocking.
        struct Flight<'a> {
            cache: &'a ImageCache,
            key: &'a CacheKey,
        }
        impl Drop for Flight<'_> {
            fn drop(&mut self) {
                let mut g = self.cache.inner.lock().expect("cache lock");
                g.building.remove(self.key);
                drop(g);
                self.cache.flights.notify_all();
            }
        }
        let flight = Flight { cache: self, key };

        // Probe the disk store before committing to a build. A verified
        // disk file is a hit this process never paid a build for; it
        // becomes resident so subsequent lookups are plain hits. A
        // poisoned resident entry is always *rebuilt* (the store file
        // shares its lineage, so the fresh build is the safe source).
        if !poisoned_here {
            if let Some(store) = &self.store {
                if let Ok(Some(image)) = store.load(key) {
                    let image = Arc::new(image);
                    let mut g = self.inner.lock().expect("cache lock");
                    g.hits += 1;
                    g.store_hits += 1;
                    self.insert_locked(&mut g, key, &image);
                    drop(g);
                    drop(flight);
                    return Ok((image, Outcome::StoreHit));
                }
            }
        }
        // Only now is this lookup a miss: nothing resident, nothing
        // (valid) on disk.
        let outcome = if poisoned_here {
            Outcome::Poisoned
        } else {
            let mut g = self.inner.lock().expect("cache lock");
            g.misses += 1;
            drop(g);
            Outcome::Miss
        };

        let built = build();
        match built {
            Err(e) => {
                let mut g = self.inner.lock().expect("cache lock");
                g.build_failures += 1;
                drop(g);
                drop(flight);
                Err(e)
            }
            Ok(image) => {
                let image = Arc::new(image);
                let mut g = self.inner.lock().expect("cache lock");
                self.insert_locked(&mut g, key, &image);
                drop(g);
                drop(flight);
                // Spill after waking waiters (they are served from the
                // map); the store skips keys already on disk.
                if let Some(store) = &self.store {
                    let _ = store.spill(key, &image);
                }
                Ok((image, outcome))
            }
        }
    }

    /// Inserts `image` under `key`, honoring the byte budget (oversized
    /// images count `uncached` and are served unresident). Requires the
    /// inner lock, passed as `g`.
    fn insert_locked(&self, g: &mut Inner, key: &CacheKey, image: &Arc<MemoryImage>) {
        let bytes = image.resident_bytes();
        if bytes > self.budget {
            g.uncached += 1;
            return;
        }
        g.tick += 1;
        let tick = g.tick;
        let prev = g.map.insert(
            key.clone(),
            Entry {
                image: Arc::clone(image),
                bytes,
                last_use: tick,
            },
        );
        // A concurrent poisoned rebuild can race us here; replacing is
        // correct (same key, same content).
        if let Some(prev) = prev {
            g.bytes -= prev.bytes;
        }
        g.bytes += bytes;
        g.inserts += 1;
        g.evict_to(self.budget, key);
    }

    /// Mutates the cached image under `key` in place, if present —
    /// the poisoning battery's fault-injection hook (there is no
    /// legitimate reason to mutate a cached image). Returns whether an
    /// entry was found.
    pub fn mutate_entry(&self, key: &CacheKey, f: impl FnOnce(&mut MemoryImage)) -> bool {
        let mut g = self.inner.lock().expect("cache lock");
        match g.map.get_mut(key) {
            None => false,
            Some(entry) => {
                f(Arc::make_mut(&mut entry.image));
                true
            }
        }
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let g = self.inner.lock().expect("cache lock");
        CacheStats {
            lookups: g.lookups,
            hits: g.hits,
            store_hits: g.store_hits,
            misses: g.misses,
            poisoned: g.poisoned,
            inserts: g.inserts,
            evictions: g.evictions,
            uncached: g.uncached,
            build_failures: g.build_failures,
            flight_waits: g.flight_waits,
            entries: g.map.len() as u64,
            resident_bytes: g.bytes,
            budget_bytes: self.budget,
        }
    }

    /// The keys resident right now, most recently used last (tests).
    pub fn resident_keys(&self) -> Vec<CacheKey> {
        let g = self.inner.lock().expect("cache lock");
        let mut keys: Vec<(&CacheKey, u64)> = g.map.iter().map(|(k, e)| (k, e.last_use)).collect();
        keys.sort_by_key(|&(_, t)| t);
        keys.into_iter().map(|(k, _)| k.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdc::image::SizeReport;

    fn key(n: &str) -> CacheKey {
        CacheKey {
            bench: n.to_string(),
            label: "d".to_string(),
            plan_digest: 0xabcd,
        }
    }

    /// A tiny sealed image with one segment of `len` bytes.
    fn image(len: usize) -> MemoryImage {
        let mut img = MemoryImage {
            name: "t".into(),
            scheme: None,
            second_regfile: false,
            entry: 0,
            initial_sp: 0,
            segments: vec![rtdc::image::Segment {
                name: ".native".into(),
                base: 0x1000,
                bytes: vec![0xAB; len],
            }],
            c0_init: Vec::new(),
            handler_range: None,
            compressed_range: None,
            proc_regions: Vec::new(),
            proc_names: Vec::new(),
            sizes: SizeReport {
                original_text_bytes: len as u32,
                native_text_bytes: len as u32,
                compressed_payload_bytes: 0,
                handler_bytes: 0,
            },
            integrity: Vec::new(),
            line_crcs: Vec::new(),
        };
        img.seal();
        img
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ImageCache::new(1 << 20);
        let (_, o1) = cache.get_or_build(&key("a"), || Ok(image(64))).unwrap();
        let (_, o2) = cache
            .get_or_build(&key("a"), || panic!("must not rebuild"))
            .unwrap();
        assert_eq!((o1, o2), (Outcome::Miss, Outcome::Hit));
        let s = cache.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
        assert_eq!(s.entries, 1);
        assert_eq!(s.lookups, s.hits + s.misses + s.poisoned);
    }

    #[test]
    fn poisoned_entries_are_evicted_and_rebuilt() {
        let cache = ImageCache::new(1 << 20);
        cache.get_or_build(&key("a"), || Ok(image(64))).unwrap();
        assert!(cache.mutate_entry(&key("a"), |img| img.segments[0].bytes[0] ^= 1));
        let (served, outcome) = cache.get_or_build(&key("a"), || Ok(image(64))).unwrap();
        assert_eq!(outcome, Outcome::Poisoned);
        served.verify_integrity().expect("rebuilt image is clean");
        let s = cache.stats();
        assert_eq!(s.poisoned, 1);
        assert_eq!(
            s.entries as i64,
            (s.inserts - s.evictions - s.poisoned) as i64
        );
    }

    #[test]
    fn lru_eviction_respects_budget_and_order() {
        let img_bytes = image(100).resident_bytes();
        let cache = ImageCache::new(3 * img_bytes);
        for n in ["a", "b", "c"] {
            cache.get_or_build(&key(n), || Ok(image(100))).unwrap();
        }
        // Touch "a" so "b" is now LRU.
        cache.get_or_build(&key("a"), || unreachable!()).unwrap();
        cache.get_or_build(&key("d"), || Ok(image(100))).unwrap();
        let resident = cache.resident_keys();
        assert_eq!(resident.len(), 3);
        assert!(!resident.contains(&key("b")), "LRU entry b must be evicted");
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= s.budget_bytes);
    }

    #[test]
    fn oversized_images_are_served_uncached() {
        let cache = ImageCache::new(10);
        let (img, o) = cache.get_or_build(&key("big"), || Ok(image(1000))).unwrap();
        assert_eq!(o, Outcome::Miss);
        assert!(img.verify_integrity().is_ok());
        let s = cache.stats();
        assert_eq!((s.uncached, s.entries, s.resident_bytes), (1, 0, 0));
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cache = ImageCache::new(0);
        for _ in 0..3 {
            let (_, o) = cache.get_or_build(&key("a"), || Ok(image(64))).unwrap();
            assert_eq!(o, Outcome::Miss);
        }
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn build_failure_releases_the_flight() {
        let cache = ImageCache::new(1 << 20);
        let err = cache
            .get_or_build(&key("a"), || {
                Err(ServeError::BuildFailed { detail: "x".into() })
            })
            .unwrap_err();
        assert_eq!(err.kind(), "build-failed");
        // The key is buildable again (no stuck flight).
        let (_, o) = cache.get_or_build(&key("a"), || Ok(image(64))).unwrap();
        assert_eq!(o, Outcome::Miss);
        assert_eq!(cache.stats().build_failures, 1);
    }

    #[test]
    fn store_backed_cache_recovers_across_instances() {
        let dir = std::env::temp_dir().join(format!(
            "rtdc-cache-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(DiskStore::open(&dir).unwrap());
        let cache = ImageCache::with_store(1 << 20, store);
        let (_, o) = cache.get_or_build(&key("a"), || Ok(image(64))).unwrap();
        assert_eq!(o, Outcome::Miss);
        drop(cache);

        // A "restarted daemon": fresh RAM cache, same directory.
        let store = Arc::new(DiskStore::open(&dir).unwrap());
        let cache = ImageCache::with_store(1 << 20, Arc::clone(&store));
        let (img, o) = cache
            .get_or_build(&key("a"), || panic!("must not rebuild"))
            .unwrap();
        assert_eq!(o, Outcome::StoreHit);
        img.verify_integrity().expect("store hit is verified");
        // Now resident: the next lookup is a plain hit.
        let (_, o) = cache.get_or_build(&key("a"), || unreachable!()).unwrap();
        assert_eq!(o, Outcome::Hit);
        let s = cache.stats();
        assert_eq!((s.hits, s.store_hits, s.misses), (2, 1, 0));
        assert_eq!(s.lookups, s.hits + s.misses + s.poisoned);
        assert_eq!(
            s.entries as i64,
            (s.inserts - s.evictions - s.poisoned) as i64
        );
        assert_eq!(store.stats().loads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_misses_build_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = Arc::new(ImageCache::new(1 << 20));
        let builds = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (cache, builds) = (Arc::clone(&cache), Arc::clone(&builds));
                s.spawn(move || {
                    let (_, _) = cache
                        .get_or_build(&key("a"), || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(image(64))
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "single-flight violated");
        let s = cache.stats();
        assert_eq!(s.lookups, 8);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
        // The losing threads blocked on the winner's flight (the 20ms
        // build window keeps the race from being theoretical).
        assert!(s.flight_waits >= 1, "{s:?}");
    }
}
