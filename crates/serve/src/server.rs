//! The daemon: request dispatch, the socket accept loop, and the
//! thread-pool plumbing between them.
//!
//! [`handle_request`] is the entire semantic surface — a *pure
//! dispatcher* from parsed [`Request`] to response line against shared
//! [`ServeState`]. The socket layer ([`Server`]) adds nothing but
//! transport: per-connection reader threads parse length-bounded lines
//! and park each request on the [`WorkerPool`], so CPU-bound work is
//! bounded by the pool width no matter how many clients connect, and a
//! slow client never wedges a worker. Tests drive [`handle_request`]
//! directly when the property under test is semantic, and through the
//! socket when it is concurrency.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use rtdc::prelude::*;
use rtdc_bench::planopt::optimized_plan_cached;
use rtdc_isa::program::ObjectProgram;
use rtdc_sim::trace::{TraceEvent, EVENT_KINDS};
use rtdc_sim::TraceSink;
use rtdc_workloads::{by_name, generate_cached, programs, spec, BenchmarkSpec};

use crate::cache::{CacheKey, ImageCache};
use crate::json::ObjWriter;
use crate::pool::WorkerPool;
use crate::protocol::{parse_request, stats_json, BuildSpec, Request, ServeError, MAX_LINE_BYTES};

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub threads: usize,
    /// Image-cache byte budget (0 disables caching).
    pub cache_bytes: u64,
    /// Default per-run instruction limit (requests may override).
    pub max_insns: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: rtdc_bench::jobs::default_jobs(),
            cache_bytes: 64 << 20,
            max_insns: 2_000_000_000,
        }
    }
}

/// Per-op request counters (the `stats` op's `requests` object).
#[derive(Debug, Default)]
pub struct OpCounters {
    /// `build` requests handled.
    pub build: AtomicU64,
    /// `run` requests handled.
    pub run: AtomicU64,
    /// `trace` requests handled.
    pub trace: AtomicU64,
    /// `plan` requests handled.
    pub plan: AtomicU64,
    /// `stats` requests handled.
    pub stats: AtomicU64,
    /// Requests answered with a typed error (any kind, including
    /// parse-level rejections the dispatcher never saw).
    pub errors: AtomicU64,
}

/// Everything a request handler needs, shared across workers.
pub struct ServeState {
    /// The content-addressed image cache.
    pub cache: ImageCache,
    /// Simulator configuration (the paper baseline; `second_regfile` is
    /// forced per-image at load time).
    pub sim: rtdc_sim::SimConfig,
    /// Default instruction limit.
    pub max_insns: u64,
    /// Per-op counters.
    pub ops: OpCounters,
    shutdown: AtomicBool,
}

impl ServeState {
    /// Fresh state for `config`.
    pub fn new(config: &ServeConfig) -> ServeState {
        ServeState {
            cache: ImageCache::new(config.cache_bytes),
            sim: rtdc_sim::SimConfig::hpca2000_baseline(),
            max_insns: config.max_insns,
            ops: OpCounters::default(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Whether a `shutdown` request has been handled.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Resolves `bench` to a generator spec, if it names one (the eight
/// paper analogs plus the three tiny specs).
fn resolve_spec(bench: &str) -> Option<BenchmarkSpec> {
    if let Some(s) = by_name(bench) {
        return Some(s);
    }
    [
        spec::tiny::walker(),
        spec::tiny::loop_kernel(),
        spec::tiny::interpreter(),
    ]
    .into_iter()
    .find(|s| s.name == bench)
}

/// Resolves `bench` to a program: a generated benchmark analog or a
/// known-answer program.
fn resolve_program(bench: &str) -> Result<Arc<ObjectProgram>, ServeError> {
    if let Some(s) = resolve_spec(bench) {
        return Ok(generate_cached(&s));
    }
    programs::all_programs()
        .into_iter()
        .find(|p| p.name == bench)
        .map(Arc::new)
        .ok_or_else(|| ServeError::UnknownBench {
            bench: bench.to_string(),
        })
}

/// Resolves a [`BuildSpec`] to `(cache label, plan)`. `None` plan means
/// a native build; the label names the image family in the cache key and
/// in responses (`native`, `d`, `cp+rf`, `d+plan`, ...).
fn resolve_build(
    program: &ObjectProgram,
    spec: &BuildSpec,
) -> Result<(String, Option<CompressionPlan>), ServeError> {
    match spec {
        BuildSpec::Native => Ok(("native".to_string(), None)),
        BuildSpec::Uniform { scheme, rf } => {
            let s = Scheme::by_name(scheme).ok_or_else(|| ServeError::UnknownScheme {
                scheme: scheme.clone(),
            })?;
            let n = program.procedures.len();
            let plan = CompressionPlan::uniform(
                s,
                *rf,
                PlanSource::Heuristic,
                &Selection::all_compressed(n),
            );
            let label = format!("{}{}", s.name(), if *rf { "+rf" } else { "" });
            Ok((label, Some(plan)))
        }
        BuildSpec::Plan { text } => {
            let plan: CompressionPlan =
                text.parse().map_err(|e: PlanError| ServeError::BadPlan {
                    detail: e.to_string(),
                })?;
            let label = format!(
                "{}{}+plan",
                plan.scheme.name(),
                if plan.second_rf { "+rf" } else { "" }
            );
            Ok((label, Some(plan)))
        }
    }
}

/// Builds or fetches the image for `(bench, spec)` through the cache.
fn obtain_image(
    state: &ServeState,
    bench: &str,
    spec: &BuildSpec,
) -> Result<(Arc<MemoryImage>, String, u32), ServeError> {
    let program = resolve_program(bench)?;
    let (label, plan) = resolve_build(&program, spec)?;
    let plan_digest = plan.as_ref().map_or(0, CompressionPlan::digest);
    let key = CacheKey {
        bench: bench.to_string(),
        label: label.clone(),
        plan_digest,
    };
    let (image, _outcome) = state.cache.get_or_build(&key, || {
        let built = match &plan {
            None => build_native(&program),
            Some(p) => build_planned(&program, p),
        };
        built.map_err(|e| ServeError::BuildFailed {
            detail: e.to_string(),
        })
    })?;
    Ok((image, label, plan_digest))
}

fn identity_fields<'a>(
    w: &'a mut ObjWriter,
    op: &str,
    bench: &str,
    label: &str,
    plan_digest: u32,
) -> &'a mut ObjWriter {
    w.bool("ok", true)
        .str("op", op)
        .str("bench", bench)
        .str("label", label)
        .u64("plan_digest", u64::from(plan_digest))
}

fn handle_build(state: &ServeState, bench: &str, spec: &BuildSpec) -> Result<String, ServeError> {
    let (image, label, digest) = obtain_image(state, bench, spec)?;
    let sz = &image.sizes;
    let mut sizes = ObjWriter::new();
    sizes
        .u64("original_text_bytes", u64::from(sz.original_text_bytes))
        .u64("native_text_bytes", u64::from(sz.native_text_bytes))
        .u64(
            "compressed_payload_bytes",
            u64::from(sz.compressed_payload_bytes),
        )
        .u64("handler_bytes", u64::from(sz.handler_bytes));
    let mut w = ObjWriter::new();
    identity_fields(&mut w, "build", bench, &label, digest)
        .raw("sizes", &sizes.finish())
        .u64("resident_bytes", image.resident_bytes());
    Ok(w.finish())
}

fn handle_run(
    state: &ServeState,
    bench: &str,
    spec: &BuildSpec,
    max_insns: Option<u64>,
) -> Result<String, ServeError> {
    let (image, label, digest) = obtain_image(state, bench, spec)?;
    let limit = max_insns.unwrap_or(state.max_insns);
    let report = run_image(&image, state.sim, limit).map_err(|e| ServeError::RunFailed {
        detail: e.to_string(),
    })?;
    let mut w = ObjWriter::new();
    identity_fields(&mut w, "run", bench, &label, digest)
        .u64("exit_code", u64::from(report.exit_code))
        .u64("output_len", report.output.len() as u64)
        .u64(
            "output_crc32",
            u64::from(rtdc::integrity::crc32(&report.output)),
        )
        .raw("stats", &stats_json(&report.stats));
    Ok(w.finish())
}

/// A sink counting events by kind — the `trace` op's payload. Counting
/// (rather than streaming JSONL back) keeps the response a small pure
/// function of the request, which the determinism battery compares
/// byte-for-byte.
#[derive(Default)]
struct CountSink {
    counts: [u64; EVENT_KINDS.len()],
}

impl TraceSink for CountSink {
    fn event(&mut self, ev: &TraceEvent) {
        let kind = ev.kind();
        let idx = EVENT_KINDS
            .iter()
            .position(|(k, _)| *k == kind)
            .expect("every event kind is in EVENT_KINDS");
        self.counts[idx] += 1;
    }
}

fn handle_trace(
    state: &ServeState,
    bench: &str,
    spec: &BuildSpec,
    max_insns: Option<u64>,
) -> Result<String, ServeError> {
    let (image, label, digest) = obtain_image(state, bench, spec)?;
    let limit = max_insns.unwrap_or(state.max_insns);
    let (report, sink) = run_image_with_sink(&image, state.sim, limit, CountSink::default())
        .map_err(|e| ServeError::RunFailed {
            detail: e.to_string(),
        })?;
    let mut events = ObjWriter::new();
    let mut total = 0u64;
    for (i, (_, name)) in EVENT_KINDS.iter().enumerate() {
        events.u64(name, sink.counts[i]);
        total += sink.counts[i];
    }
    let mut w = ObjWriter::new();
    identity_fields(&mut w, "trace", bench, &label, digest)
        .u64("exit_code", u64::from(report.exit_code))
        .u64("events_total", total)
        .raw("events", &events.finish());
    Ok(w.finish())
}

fn handle_plan(
    state: &ServeState,
    bench: &str,
    scheme: &str,
    rf: bool,
) -> Result<String, ServeError> {
    let spec = resolve_spec(bench).ok_or_else(|| {
        if resolve_program(bench).is_ok() {
            ServeError::Unsupported {
                detail: format!(
                    "`{bench}` is a known-answer program; `plan` needs a generated benchmark"
                ),
            }
        } else {
            ServeError::UnknownBench {
                bench: bench.to_string(),
            }
        }
    })?;
    let s = Scheme::by_name(scheme).ok_or_else(|| ServeError::UnknownScheme {
        scheme: scheme.to_string(),
    })?;
    let plan = optimized_plan_cached(&spec, s, rf, state.sim);
    let mut w = ObjWriter::new();
    w.bool("ok", true)
        .str("op", "plan")
        .str("bench", bench)
        .str(
            "scheme",
            &format!("{}{}", s.name(), if rf { "+rf" } else { "" }),
        )
        .u64("plan_digest", u64::from(plan.digest()))
        .str("plan", &plan.to_string());
    Ok(w.finish())
}

fn handle_stats(state: &ServeState, pool: Option<&WorkerPool>) -> String {
    let o = &state.ops;
    let mut requests = ObjWriter::new();
    requests
        .u64("build", o.build.load(Ordering::Relaxed))
        .u64("run", o.run.load(Ordering::Relaxed))
        .u64("trace", o.trace.load(Ordering::Relaxed))
        .u64("plan", o.plan.load(Ordering::Relaxed))
        .u64("stats", o.stats.load(Ordering::Relaxed))
        .u64("errors", o.errors.load(Ordering::Relaxed));
    let c = state.cache.stats();
    let mut cache = ObjWriter::new();
    cache
        .u64("lookups", c.lookups)
        .u64("hits", c.hits)
        .u64("misses", c.misses)
        .u64("poisoned", c.poisoned)
        .u64("inserts", c.inserts)
        .u64("evictions", c.evictions)
        .u64("uncached", c.uncached)
        .u64("build_failures", c.build_failures)
        .u64("entries", c.entries)
        .u64("resident_bytes", c.resident_bytes)
        .u64("budget_bytes", c.budget_bytes);
    let mut w = ObjWriter::new();
    w.bool("ok", true)
        .str("op", "stats")
        .raw("requests", &requests.finish())
        .raw("cache", &cache.finish());
    if let Some(p) = pool {
        let mut pw = ObjWriter::new();
        pw.u64("threads", p.threads() as u64)
            .u64("executed", p.executed())
            .u64("panics", p.panics());
        w.raw("pool", &pw.finish());
    }
    w.finish()
}

/// Handles one parsed request, returning the response line (without the
/// trailing newline). Pure dispatch: every failure becomes a typed error
/// response; nothing here panics on any input.
pub fn handle_request(state: &ServeState, req: &Request, pool: Option<&WorkerPool>) -> String {
    let result = match req {
        Request::Build { bench, spec } => {
            state.ops.build.fetch_add(1, Ordering::Relaxed);
            handle_build(state, bench, spec)
        }
        Request::Run {
            bench,
            spec,
            max_insns,
        } => {
            state.ops.run.fetch_add(1, Ordering::Relaxed);
            handle_run(state, bench, spec, *max_insns)
        }
        Request::Trace {
            bench,
            spec,
            max_insns,
        } => {
            state.ops.trace.fetch_add(1, Ordering::Relaxed);
            handle_trace(state, bench, spec, *max_insns)
        }
        Request::Plan { bench, scheme, rf } => {
            state.ops.plan.fetch_add(1, Ordering::Relaxed);
            handle_plan(state, bench, scheme, *rf)
        }
        Request::Stats => {
            state.ops.stats.fetch_add(1, Ordering::Relaxed);
            Ok(handle_stats(state, pool))
        }
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            let mut w = ObjWriter::new();
            w.bool("ok", true).str("op", "shutdown");
            Ok(w.finish())
        }
    };
    match result {
        Ok(line) => line,
        Err(e) => {
            state.ops.errors.fetch_add(1, Ordering::Relaxed);
            e.render()
        }
    }
}

/// Handles one raw request line end to end (parse + dispatch).
pub fn handle_line(state: &ServeState, line: &str, pool: Option<&WorkerPool>) -> String {
    match parse_request(line) {
        Ok(req) => handle_request(state, &req, pool),
        Err(e) => {
            state.ops.errors.fetch_add(1, Ordering::Relaxed);
            e.render()
        }
    }
}

/// One bounded line read.
enum LineRead {
    /// A complete line (newline stripped), within the cap.
    Line(Vec<u8>),
    /// The line exceeded the cap; the overflow was discarded up to (and
    /// including) the next newline.
    Oversized,
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line of at most `max` bytes. An oversized
/// line is *discarded as it streams in* — the server never buffers more
/// than `max` bytes per connection, so an abusive client cannot balloon
/// memory. `stop` is polled on every read timeout (the connection's
/// read timeout is the shutdown latency bound): when it reports true,
/// the read ends as a clean EOF.
fn read_line_bounded<R: BufRead>(
    r: &mut R,
    max: usize,
    stop: &dyn Fn() -> bool,
) -> std::io::Result<LineRead> {
    let mut line = Vec::new();
    let fill = |r: &mut R| -> std::io::Result<Option<()>> {
        loop {
            match r.fill_buf() {
                Ok(_) => return Ok(Some(())),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop() {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    };
    loop {
        if fill(r)?.is_none() {
            return Ok(LineRead::Eof);
        }
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return if line.is_empty() {
                Ok(LineRead::Eof)
            } else {
                // Trailing unterminated line: serve it (clients that
                // close after the last request without a final newline).
                Ok(LineRead::Line(std::mem::take(&mut line)))
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let fits = line.len() + pos <= max;
                if fits {
                    line.extend_from_slice(&chunk[..pos]);
                }
                r.consume(pos + 1);
                return if fits {
                    Ok(LineRead::Line(line))
                } else {
                    Ok(LineRead::Oversized)
                };
            }
            None => {
                let n = chunk.len();
                if line.len() + n <= max {
                    line.extend_from_slice(chunk);
                    r.consume(n);
                } else {
                    // Over the cap mid-line: drop what we have and
                    // stream-discard until the newline.
                    line.clear();
                    r.consume(n);
                    loop {
                        if fill(r)?.is_none() {
                            return Ok(LineRead::Eof);
                        }
                        let chunk = r.fill_buf()?;
                        if chunk.is_empty() {
                            return Ok(LineRead::Eof);
                        }
                        match chunk.iter().position(|&b| b == b'\n') {
                            Some(pos) => {
                                r.consume(pos + 1);
                                return Ok(LineRead::Oversized);
                            }
                            None => {
                                let n = chunk.len();
                                r.consume(n);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Serves one connection: parse lines, park each request on the pool,
/// write each reply. Returns when the client disconnects or the server
/// shuts down; `path` is the server's own socket, dialed once to wake
/// the accept loop when this connection carried the `shutdown` op.
fn serve_connection(
    state: &Arc<ServeState>,
    pool: &Arc<WorkerPool>,
    stream: UnixStream,
    path: &Path,
) {
    // The read timeout bounds shutdown latency: an idle reader wakes at
    // this cadence, polls the flag, and exits instead of blocking a
    // teardown join forever.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(50)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let stop = || state.shutdown_requested();
    loop {
        if state.shutdown_requested() {
            return;
        }
        let line = match read_line_bounded(&mut reader, MAX_LINE_BYTES, &stop) {
            Err(_) | Ok(LineRead::Eof) => return,
            Ok(LineRead::Oversized) => {
                state.ops.errors.fetch_add(1, Ordering::Relaxed);
                let resp = ServeError::OversizedLine {
                    limit: MAX_LINE_BYTES,
                }
                .render();
                if write_line(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
            Ok(LineRead::Line(bytes)) => bytes,
        };
        // Every line — even an empty one — gets exactly one response;
        // clients pipeline on that 1:1 invariant, so silently skipping
        // a blank line would desynchronize (and wedge) them.
        let line = String::from_utf8_lossy(&line).into_owned();
        // Dispatch to the pool and wait for this request's reply; the
        // job never dispatches nested jobs, so the pool cannot deadlock.
        let (tx, rx) = mpsc::channel::<String>();
        let st = Arc::clone(state);
        let pl = Arc::clone(pool);
        let accepted = pool.execute(Box::new(move || {
            let resp = handle_line(&st, &line, Some(&pl));
            let _ = tx.send(resp);
        }));
        let resp = if accepted {
            match rx.recv() {
                Ok(r) => r,
                // The job panicked past the renderer (it shouldn't): the
                // channel closes; answer with a typed error, not silence.
                Err(_) => ServeError::BuildFailed {
                    detail: "internal: request handler died".into(),
                }
                .render(),
            }
        } else {
            ServeError::Unsupported {
                detail: "server is shutting down".into(),
            }
            .render()
        };
        if write_line(&mut writer, &resp).is_err() {
            return;
        }
        if state.shutdown_requested() {
            // This connection delivered (or raced with) the `shutdown`
            // op; the accept loop is still parked in `incoming()`, so
            // dial it awake before leaving.
            let _ = UnixStream::connect(path);
            return;
        }
    }
}

fn write_line(w: &mut UnixStream, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// A running daemon bound to a Unix socket.
pub struct Server {
    path: PathBuf,
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `path` (removing any stale socket file) and starts serving.
    ///
    /// # Errors
    ///
    /// I/O errors binding the socket.
    pub fn start(path: &Path, config: ServeConfig) -> std::io::Result<Server> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let state = Arc::new(ServeState::new(&config));
        let pool = Arc::new(WorkerPool::new(config.threads));
        let accept_state = Arc::clone(&state);
        let accept_path = path.to_path_buf();
        let accept = std::thread::Builder::new()
            .name("rtdc-serve-accept".into())
            .spawn(move || {
                // `pool` lives (and on drop, drains) inside the accept
                // thread: joining the server joins all in-flight work.
                let pool = pool;
                let mut readers: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if accept_state.shutdown_requested() {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let st = Arc::clone(&accept_state);
                    let pl = Arc::clone(&pool);
                    let wake = accept_path.clone();
                    let h = std::thread::Builder::new()
                        .name("rtdc-serve-conn".into())
                        .spawn(move || serve_connection(&st, &pl, stream, &wake))
                        .expect("spawn connection reader");
                    readers.push(h);
                    readers.retain(|h| !h.is_finished());
                }
                for h in readers {
                    let _ = h.join();
                }
            })
            .expect("spawn accept loop");
        Ok(Server {
            path: path.to_path_buf(),
            state,
            accept: Some(accept),
        })
    }

    /// The shared state (tests poke counters and the cache through this).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// The socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Requests shutdown and wakes the accept loop.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.path);
    }

    /// Waits for the accept loop (and with it, all in-flight work) to
    /// finish. Call [`Server::shutdown`] first, or send a `shutdown`
    /// request; otherwise this blocks until a client does.
    pub fn join(mut self) {
        // A `shutdown` op flips the flag from a worker; the accept loop
        // still needs a wake-up connection to notice.
        if self.state.shutdown_requested() {
            let _ = UnixStream::connect(&self.path);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        let _ = UnixStream::connect(&self.path);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

// Teardown converges from either direction. A client `shutdown` op:
// the handling connection writes its reply, sees the flag, dials the
// wake-up connection, and the accept loop breaks. A host-side
// `shutdown()`/`Drop`: the flag plus wake-up dial stop the accept loop,
// and every idle reader notices the flag at its next read timeout (the
// 50ms cadence set on each connection), so joining never waits on a
// blocked read.

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ServeState {
        ServeState::new(&ServeConfig {
            threads: 2,
            cache_bytes: 16 << 20,
            max_insns: 50_000_000,
        })
    }

    #[test]
    fn build_and_run_known_answer_program() {
        let st = state();
        let b = handle_line(&st, r#"{"op":"build","bench":"sort","scheme":"d"}"#, None);
        assert!(b.contains(r#""ok":true"#), "{b}");
        assert!(b.contains(r#""label":"d""#), "{b}");
        let r = handle_line(&st, r#"{"op":"run","bench":"sort","scheme":"d"}"#, None);
        assert!(r.contains(r#""ok":true"#), "{r}");
        assert!(r.contains(r#""exit_code":"#), "{r}");
        assert!(r.contains(r#""stats":{"insns":"#), "{r}");
        // The second run hits the cache; the response bytes must not care.
        let r2 = handle_line(&st, r#"{"op":"run","bench":"sort","scheme":"d"}"#, None);
        assert_eq!(r, r2, "responses must be pure functions of the request");
        let s = st.cache.stats();
        assert_eq!((s.misses, s.hits), (1, 2));
    }

    #[test]
    fn run_matches_direct_runner() {
        let st = state();
        let resp = handle_line(
            &st,
            r#"{"op":"run","bench":"crc32","scheme":"cp+rf"}"#,
            None,
        );
        let v = crate::json::parse(&resp).unwrap();
        let got = crate::protocol::parse_stats(v.get("stats").unwrap()).unwrap();
        let program = resolve_program("crc32").unwrap();
        let plan = CompressionPlan::uniform(
            Scheme::CodePack,
            true,
            PlanSource::Heuristic,
            &Selection::all_compressed(program.procedures.len()),
        );
        let image = build_planned(&program, &plan).unwrap();
        let want = run_image(&image, st.sim, st.max_insns).unwrap();
        assert_eq!(got, want.stats);
    }

    #[test]
    fn trace_counts_are_consistent() {
        let st = state();
        let resp = handle_line(&st, r#"{"op":"trace","bench":"sort"}"#, None);
        let v = crate::json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(crate::json::Json::as_bool), Some(true));
        let events = v.get("events").unwrap();
        let fetches = events
            .get("fetch")
            .and_then(crate::json::Json::as_u64)
            .unwrap();
        let commits = events
            .get("commit")
            .and_then(crate::json::Json::as_u64)
            .unwrap();
        assert!(fetches > 0 && commits > 0);
        // A native image never takes the decompression exception.
        assert_eq!(
            events.get("exc").and_then(crate::json::Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn unknown_targets_are_typed_errors() {
        let st = state();
        for (line, kind) in [
            (r#"{"op":"run","bench":"nope"}"#, "unknown-bench"),
            (
                r#"{"op":"run","bench":"sort","scheme":"zz"}"#,
                "unknown-scheme",
            ),
            (
                r#"{"op":"build","bench":"sort","plan":"not a plan"}"#,
                "bad-plan",
            ),
            (
                r#"{"op":"plan","bench":"sort","scheme":"d"}"#,
                "unsupported",
            ),
            (
                r#"{"op":"plan","bench":"nope","scheme":"d"}"#,
                "unknown-bench",
            ),
        ] {
            let resp = handle_line(&st, line, None);
            assert!(
                resp.contains(&format!(r#""error":"{kind}""#)),
                "{line} -> {resp}"
            );
        }
        assert_eq!(st.ops.errors.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn plan_build_shares_cache_with_equivalent_digest() {
        let st = state();
        // `plan` on a tiny benchmark, then `build` with the returned text:
        // the digest in both responses must agree.
        let p = handle_line(
            &st,
            r#"{"op":"plan","bench":"tiny-loop","scheme":"d"}"#,
            None,
        );
        let v = crate::json::parse(&p).unwrap();
        let digest = v
            .get("plan_digest")
            .and_then(crate::json::Json::as_u64)
            .unwrap();
        let text = v.get("plan").and_then(crate::json::Json::as_str).unwrap();
        let mut req = ObjWriter::new();
        req.str("op", "build")
            .str("bench", "tiny-loop")
            .str("plan", text);
        let b = handle_line(&st, &req.finish(), None);
        let bv = crate::json::parse(&b).unwrap();
        assert_eq!(
            bv.get("plan_digest").and_then(crate::json::Json::as_u64),
            Some(digest)
        );
    }

    #[test]
    fn bounded_reader_discards_oversized_lines() {
        let data = {
            let mut d = vec![b'a'; 100];
            d.push(b'\n');
            d.extend_from_slice(b"{\"op\":\"stats\"}\n");
            d
        };
        let mut r = BufReader::with_capacity(16, &data[..]);
        let stop = || false;
        assert!(matches!(
            read_line_bounded(&mut r, 10, &stop).unwrap(),
            LineRead::Oversized
        ));
        match read_line_bounded(&mut r, 10_000, &stop).unwrap() {
            LineRead::Line(l) => assert_eq!(l, b"{\"op\":\"stats\"}"),
            _ => panic!("second line must parse after an oversized first"),
        }
        assert!(matches!(
            read_line_bounded(&mut r, 10, &stop).unwrap(),
            LineRead::Eof
        ));
    }
}
