//! The daemon: request dispatch, the socket accept loop, and the
//! thread-pool plumbing between them.
//!
//! [`handle_request`] is the entire semantic surface — a *pure
//! dispatcher* from parsed [`Request`] to response line against shared
//! [`ServeState`]. The socket layer ([`Server`]) adds nothing but
//! transport: per-connection reader threads parse length-bounded lines
//! and park each request on the [`WorkerPool`], so CPU-bound work is
//! bounded by the pool width no matter how many clients connect, and a
//! slow client never wedges a worker. Tests drive [`handle_request`]
//! directly when the property under test is semantic, and through the
//! socket when it is concurrency.
//!
//! Telemetry is woven through every layer but leaks into none of the
//! pure responses: [`ServeMetrics`] pre-registers the hot-path handles
//! (per-op counters and service-time histograms, byte counters, the
//! pool's wall histogram), [`sync_ambient`] mirrors cache and pool
//! counters into gauges at snapshot time, and the structured log
//! (`rtdc_obs::log`) carries connection/request events on stderr.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use rtdc::prelude::*;
use rtdc_bench::planopt::optimized_plan_cached;
use rtdc_isa::program::ObjectProgram;
use rtdc_obs::log::{self, Level};
use rtdc_obs::{Counter, Histogram, MetricsRegistry};
use rtdc_sim::trace::{TraceEvent, EVENT_KINDS};
use rtdc_sim::TraceSink;
use rtdc_workloads::{by_name, generate_cached, programs, spec, BenchmarkSpec};

use crate::cache::{CacheKey, ImageCache};
use crate::json::ObjWriter;
use crate::pool::WorkerPool;
use crate::protocol::{
    parse_request, stats_json, BuildSpec, MetricsFormat, Request, ServeError, MAX_LINE_BYTES,
};
use crate::store::DiskStore;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub threads: usize,
    /// Image-cache byte budget (0 disables caching).
    pub cache_bytes: u64,
    /// Default per-run instruction limit (requests may override).
    pub max_insns: u64,
    /// Directory for the persistent image store (`--cache-dir`).
    /// `None` means RAM-only: the cache dies with the process.
    pub cache_dir: Option<PathBuf>,
    /// Admission bound: a request arriving while this many jobs are
    /// already queued (excluding in-flight) is shed with a typed
    /// `overloaded` error instead of queueing without bound.
    pub max_queue: u64,
    /// Per-connection write-stall budget in milliseconds: a response
    /// write making no progress for this long is abandoned and the
    /// connection dropped, so a slow-loris client cannot pin a reader
    /// thread.
    pub write_stall_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: rtdc_bench::jobs::default_jobs(),
            cache_bytes: 64 << 20,
            max_insns: 2_000_000_000,
            cache_dir: None,
            max_queue: 1024,
            write_stall_ms: 2_000,
        }
    }
}

/// Per-op request counters (the `stats` op's `requests` object). Each
/// is a registry handle (`serve.req.<op>` / `serve.err.total`), so the
/// `stats` and `metrics` views can never disagree.
#[derive(Debug)]
pub struct OpCounters {
    /// `build` requests handled.
    pub build: Arc<Counter>,
    /// `run` requests handled.
    pub run: Arc<Counter>,
    /// `trace` requests handled.
    pub trace: Arc<Counter>,
    /// `plan` requests handled.
    pub plan: Arc<Counter>,
    /// `stats` requests handled.
    pub stats: Arc<Counter>,
    /// `metrics` requests handled.
    pub metrics: Arc<Counter>,
    /// Requests answered with a typed error (any kind, including
    /// parse-level rejections the dispatcher never saw).
    pub errors: Arc<Counter>,
}

impl OpCounters {
    fn new(reg: &MetricsRegistry) -> OpCounters {
        OpCounters {
            build: reg.counter("serve.req.build"),
            run: reg.counter("serve.req.run"),
            trace: reg.counter("serve.req.trace"),
            plan: reg.counter("serve.req.plan"),
            stats: reg.counter("serve.req.stats"),
            metrics: reg.counter("serve.req.metrics"),
            errors: reg.counter("serve.err.total"),
        }
    }
}

/// The ops `handle_request` dispatches (service-time histograms are
/// pre-registered per entry, so the hot path never takes the registry
/// lock).
const OPS: [&str; 7] = [
    "build", "run", "trace", "plan", "stats", "metrics", "shutdown",
];

/// The daemon's metrics registry plus the pre-registered hot-path
/// handles. Everything observable through the `metrics` op lives here;
/// ambient values (cache counters, pool depth, uptime) are mirrored
/// into registry gauges by [`sync_ambient`] at snapshot time, so they
/// are exactly the internal counters at the instant of the snapshot.
pub struct ServeMetrics {
    /// The registry the `metrics` op snapshots.
    pub registry: MetricsRegistry,
    /// Request bytes read off client sockets, newlines included.
    pub bytes_in: Arc<Counter>,
    /// Response bytes written to client sockets, newlines included.
    pub bytes_out: Arc<Counter>,
    /// Per-job pool wall time (`serve.pool.job_wall.us`), fed by the
    /// worker loop.
    pub pool_wall: Arc<Histogram>,
    /// Requests shed at admission with `overloaded` (`serve.shed`).
    pub shed: Arc<Counter>,
    /// Requests whose `deadline_ms` budget expired
    /// (`serve.deadline_exceeded`).
    pub deadline_exceeded: Arc<Counter>,
    /// `serve.op.<op>.us` service-time histograms, one per [`OPS`] entry.
    op_us: Vec<(&'static str, Arc<Histogram>)>,
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        let registry = MetricsRegistry::new();
        let op_us = OPS
            .iter()
            .map(|op| (*op, registry.histogram(&format!("serve.op.{op}.us"))))
            .collect();
        ServeMetrics {
            bytes_in: registry.counter("serve.bytes_in"),
            bytes_out: registry.counter("serve.bytes_out"),
            pool_wall: registry.histogram("serve.pool.job_wall.us"),
            shed: registry.counter("serve.shed"),
            deadline_exceeded: registry.counter("serve.deadline_exceeded"),
            op_us,
            registry,
        }
    }

    /// The service-time histogram for `op`.
    fn op_us(&self, op: &str) -> &Arc<Histogram> {
        self.op_us
            .iter()
            .find(|(k, _)| *k == op)
            .map(|(_, h)| h)
            .expect("every dispatched op is in OPS")
    }

    /// Counts one typed error under `serve.err.<kind>` (registered
    /// lazily — errors are not the hot path).
    fn record_error(&self, kind: &str) {
        self.registry.counter(&format!("serve.err.{kind}")).inc();
    }

    /// Records one simulator run for the image label: the
    /// `serve.sim.{runs,cycles}.<label>` counters and the
    /// `serve.sim.wall_us.<label>` histogram.
    fn record_sim(&self, label: &str, cycles: u64, wall: Duration) {
        self.registry
            .counter(&format!("serve.sim.runs.{label}"))
            .inc();
        self.registry
            .counter(&format!("serve.sim.cycles.{label}"))
            .add(cycles);
        self.registry
            .histogram(&format!("serve.sim.wall_us.{label}"))
            .observe_micros(wall);
    }
}

/// Everything a request handler needs, shared across workers.
pub struct ServeState {
    /// The content-addressed image cache.
    pub cache: ImageCache,
    /// Simulator configuration (the paper baseline; `second_regfile` is
    /// forced per-image at load time).
    pub sim: rtdc_sim::SimConfig,
    /// Default instruction limit.
    pub max_insns: u64,
    /// Per-op counters.
    pub ops: OpCounters,
    /// The telemetry registry and its hot-path handles.
    pub metrics: ServeMetrics,
    /// Admission bound (see [`ServeConfig::max_queue`]).
    pub max_queue: u64,
    /// Write-stall budget (see [`ServeConfig::write_stall_ms`]).
    pub write_stall_ms: u64,
    started: Instant,
    started_at: u64,
    shutdown: AtomicBool,
}

impl ServeState {
    /// Fresh state for `config`. Panics if the configured `cache_dir`
    /// cannot be opened; use [`ServeState::try_new`] to handle that.
    pub fn new(config: &ServeConfig) -> ServeState {
        ServeState::try_new(config).expect("open cache dir")
    }

    /// Fresh state for `config`, opening (and scanning) the persistent
    /// store when `cache_dir` is set.
    ///
    /// # Errors
    ///
    /// I/O errors creating or reading the store directory. Individual
    /// bad store *files* are never errors — the scan quarantines them.
    pub fn try_new(config: &ServeConfig) -> std::io::Result<ServeState> {
        let metrics = ServeMetrics::new();
        let cache = match &config.cache_dir {
            None => ImageCache::new(config.cache_bytes),
            Some(dir) => {
                let store = Arc::new(DiskStore::open(dir)?);
                let s = store.stats();
                log::event(Level::Info, "store_open")
                    .str("dir", &dir.to_string_lossy())
                    .u64("entries", s.entries)
                    .u64("quarantined", s.quarantined)
                    .u64("tmp_cleaned", s.tmp_cleaned)
                    .emit();
                ImageCache::with_store(config.cache_bytes, store)
            }
        };
        Ok(ServeState {
            cache,
            sim: rtdc_sim::SimConfig::hpca2000_baseline(),
            max_insns: config.max_insns,
            ops: OpCounters::new(&metrics.registry),
            metrics,
            max_queue: config.max_queue,
            write_stall_ms: config.write_stall_ms,
            started: Instant::now(),
            started_at: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Whole seconds since this state was constructed.
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Unix seconds at construction (the `stats`/`metrics` ops'
    /// `started_at` field; a restart is visible as this changing).
    pub fn started_at(&self) -> u64 {
        self.started_at
    }

    /// Whether a `shutdown` request has been handled.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Mirrors ambient values — cache counters, pool depth, uptime — into
/// registry gauges. Called at snapshot time (the `metrics` op and the
/// shutdown flush), so the gauges a snapshot carries are exactly the
/// internal counters at that instant; they are *views*, not shadow
/// state that could drift.
fn sync_ambient(state: &ServeState, pool: Option<&WorkerPool>) {
    let reg = &state.metrics.registry;
    reg.gauge("serve.uptime_seconds")
        .set(state.uptime_seconds());
    let c = state.cache.stats();
    for (name, v) in [
        ("lookups", c.lookups),
        ("hits", c.hits),
        ("store_hits", c.store_hits),
        ("misses", c.misses),
        ("poisoned", c.poisoned),
        ("inserts", c.inserts),
        ("evictions", c.evictions),
        ("uncached", c.uncached),
        ("build_failures", c.build_failures),
        ("flight_waits", c.flight_waits),
        ("entries", c.entries),
        ("resident_bytes", c.resident_bytes),
        ("budget_bytes", c.budget_bytes),
    ] {
        reg.gauge(&format!("serve.cache.{name}")).set(v);
    }
    if let Some(store) = state.cache.store() {
        let s = store.stats();
        for (name, v) in [
            ("entries", s.entries),
            ("scanned", s.scanned),
            ("quarantined", s.quarantined),
            ("tmp_cleaned", s.tmp_cleaned),
            ("loads", s.loads),
            ("load_failures", s.load_failures),
            ("spills", s.spills),
            ("spill_failures", s.spill_failures),
        ] {
            reg.gauge(&format!("serve.store.{name}")).set(v);
        }
    }
    if let Some(p) = pool {
        for (name, v) in [
            ("threads", p.threads() as u64),
            ("queued", p.queued()),
            ("executed", p.executed()),
            ("panics", p.panics()),
            ("in_flight", p.in_flight()),
            ("queue_depth", p.queue_depth()),
        ] {
            reg.gauge(&format!("serve.pool.{name}")).set(v);
        }
    }
}

/// Resolves `bench` to a generator spec, if it names one (the eight
/// paper analogs plus the three tiny specs).
fn resolve_spec(bench: &str) -> Option<BenchmarkSpec> {
    if let Some(s) = by_name(bench) {
        return Some(s);
    }
    [
        spec::tiny::walker(),
        spec::tiny::loop_kernel(),
        spec::tiny::interpreter(),
    ]
    .into_iter()
    .find(|s| s.name == bench)
}

/// Resolves `bench` to a program: a generated benchmark analog or a
/// known-answer program.
fn resolve_program(bench: &str) -> Result<Arc<ObjectProgram>, ServeError> {
    if let Some(s) = resolve_spec(bench) {
        return Ok(generate_cached(&s));
    }
    programs::all_programs()
        .into_iter()
        .find(|p| p.name == bench)
        .map(Arc::new)
        .ok_or_else(|| ServeError::UnknownBench {
            bench: bench.to_string(),
        })
}

/// Resolves a [`BuildSpec`] to `(cache label, plan)`. `None` plan means
/// a native build; the label names the image family in the cache key and
/// in responses (`native`, `d`, `cp+rf`, `d+plan`, ...).
fn resolve_build(
    program: &ObjectProgram,
    spec: &BuildSpec,
) -> Result<(String, Option<CompressionPlan>), ServeError> {
    match spec {
        BuildSpec::Native => Ok(("native".to_string(), None)),
        BuildSpec::Uniform { scheme, rf } => {
            let s = Scheme::by_name(scheme).ok_or_else(|| ServeError::UnknownScheme {
                scheme: scheme.clone(),
            })?;
            let n = program.procedures.len();
            let plan = CompressionPlan::uniform(
                s,
                *rf,
                PlanSource::Heuristic,
                &Selection::all_compressed(n),
            );
            let label = format!("{}{}", s.name(), if *rf { "+rf" } else { "" });
            Ok((label, Some(plan)))
        }
        BuildSpec::Plan { text } => {
            let plan: CompressionPlan =
                text.parse().map_err(|e: PlanError| ServeError::BadPlan {
                    detail: e.to_string(),
                })?;
            let label = format!(
                "{}{}+plan",
                plan.scheme.name(),
                if plan.second_rf { "+rf" } else { "" }
            );
            Ok((label, Some(plan)))
        }
    }
}

/// Builds or fetches the image for `(bench, spec)` through the cache.
fn obtain_image(
    state: &ServeState,
    bench: &str,
    spec: &BuildSpec,
) -> Result<(Arc<MemoryImage>, String, u32), ServeError> {
    let program = resolve_program(bench)?;
    let (label, plan) = resolve_build(&program, spec)?;
    let plan_digest = plan.as_ref().map_or(0, CompressionPlan::digest);
    let key = CacheKey {
        bench: bench.to_string(),
        label: label.clone(),
        plan_digest,
    };
    let (image, _outcome) = state.cache.get_or_build(&key, || {
        let built = match &plan {
            None => build_native(&program),
            Some(p) => build_planned(&program, p),
        };
        built.map_err(|e| ServeError::BuildFailed {
            detail: e.to_string(),
        })
    })?;
    Ok((image, label, plan_digest))
}

fn identity_fields<'a>(
    w: &'a mut ObjWriter,
    op: &str,
    bench: &str,
    label: &str,
    plan_digest: u32,
) -> &'a mut ObjWriter {
    w.bool("ok", true)
        .str("op", op)
        .str("bench", bench)
        .str("label", label)
        .u64("plan_digest", u64::from(plan_digest))
}

fn handle_build(state: &ServeState, bench: &str, spec: &BuildSpec) -> Result<String, ServeError> {
    let (image, label, digest) = obtain_image(state, bench, spec)?;
    let sz = &image.sizes;
    let mut sizes = ObjWriter::new();
    sizes
        .u64("original_text_bytes", u64::from(sz.original_text_bytes))
        .u64("native_text_bytes", u64::from(sz.native_text_bytes))
        .u64(
            "compressed_payload_bytes",
            u64::from(sz.compressed_payload_bytes),
        )
        .u64("handler_bytes", u64::from(sz.handler_bytes));
    let mut w = ObjWriter::new();
    identity_fields(&mut w, "build", bench, &label, digest)
        .raw("sizes", &sizes.finish())
        .u64("resident_bytes", image.resident_bytes());
    Ok(w.finish())
}

/// A request's deadline budget, anchored at admission (the instant the
/// line came off the socket — queue time counts against the budget).
#[derive(Debug, Clone, Copy)]
struct Deadline {
    at: Instant,
    ms: u64,
}

impl Deadline {
    /// The deadline for `req`, if it carries one, anchored at `admitted`.
    fn of(req: &Request, admitted: Instant) -> Option<Deadline> {
        req.deadline_ms().map(|ms| Deadline {
            at: admitted + Duration::from_millis(ms),
            ms,
        })
    }

    /// Errors with a typed [`ServeError::Timeout`] if the budget has
    /// expired. Called at dequeue and between build and run phases.
    fn check(d: Option<Deadline>) -> Result<(), ServeError> {
        match d {
            Some(d) if Instant::now() >= d.at => Err(ServeError::Timeout { deadline_ms: d.ms }),
            _ => Ok(()),
        }
    }
}

fn handle_run(
    state: &ServeState,
    bench: &str,
    spec: &BuildSpec,
    max_insns: Option<u64>,
    deadline: Option<Deadline>,
) -> Result<String, ServeError> {
    let (image, label, digest) = obtain_image(state, bench, spec)?;
    // The build phase may have consumed the whole budget; answer
    // `timeout` rather than starting a run the client gave up on.
    Deadline::check(deadline)?;
    let limit = max_insns.unwrap_or(state.max_insns);
    let sim_start = Instant::now();
    let report = run_image(&image, state.sim, limit).map_err(|e| ServeError::RunFailed {
        detail: e.to_string(),
    })?;
    state
        .metrics
        .record_sim(&label, report.stats.cycles, sim_start.elapsed());
    let mut w = ObjWriter::new();
    identity_fields(&mut w, "run", bench, &label, digest)
        .u64("exit_code", u64::from(report.exit_code))
        .u64("output_len", report.output.len() as u64)
        .u64(
            "output_crc32",
            u64::from(rtdc::integrity::crc32(&report.output)),
        )
        .raw("stats", &stats_json(&report.stats));
    Ok(w.finish())
}

/// A sink counting events by kind — the `trace` op's payload. Counting
/// (rather than streaming JSONL back) keeps the response a small pure
/// function of the request, which the determinism battery compares
/// byte-for-byte.
#[derive(Default)]
struct CountSink {
    counts: [u64; EVENT_KINDS.len()],
}

impl TraceSink for CountSink {
    fn event(&mut self, ev: &TraceEvent) {
        let kind = ev.kind();
        let idx = EVENT_KINDS
            .iter()
            .position(|(k, _)| *k == kind)
            .expect("every event kind is in EVENT_KINDS");
        self.counts[idx] += 1;
    }
}

fn handle_trace(
    state: &ServeState,
    bench: &str,
    spec: &BuildSpec,
    max_insns: Option<u64>,
    deadline: Option<Deadline>,
) -> Result<String, ServeError> {
    let (image, label, digest) = obtain_image(state, bench, spec)?;
    Deadline::check(deadline)?;
    let limit = max_insns.unwrap_or(state.max_insns);
    let sim_start = Instant::now();
    let (report, sink) = run_image_with_sink(&image, state.sim, limit, CountSink::default())
        .map_err(|e| ServeError::RunFailed {
            detail: e.to_string(),
        })?;
    state
        .metrics
        .record_sim(&label, report.stats.cycles, sim_start.elapsed());
    let mut events = ObjWriter::new();
    let mut total = 0u64;
    for (i, (_, name)) in EVENT_KINDS.iter().enumerate() {
        events.u64(name, sink.counts[i]);
        total += sink.counts[i];
    }
    let mut w = ObjWriter::new();
    identity_fields(&mut w, "trace", bench, &label, digest)
        .u64("exit_code", u64::from(report.exit_code))
        .u64("events_total", total)
        .raw("events", &events.finish());
    Ok(w.finish())
}

fn handle_plan(
    state: &ServeState,
    bench: &str,
    scheme: &str,
    rf: bool,
) -> Result<String, ServeError> {
    let spec = resolve_spec(bench).ok_or_else(|| {
        if resolve_program(bench).is_ok() {
            ServeError::Unsupported {
                detail: format!(
                    "`{bench}` is a known-answer program; `plan` needs a generated benchmark"
                ),
            }
        } else {
            ServeError::UnknownBench {
                bench: bench.to_string(),
            }
        }
    })?;
    let s = Scheme::by_name(scheme).ok_or_else(|| ServeError::UnknownScheme {
        scheme: scheme.to_string(),
    })?;
    let plan = optimized_plan_cached(&spec, s, rf, state.sim);
    let mut w = ObjWriter::new();
    w.bool("ok", true)
        .str("op", "plan")
        .str("bench", bench)
        .str(
            "scheme",
            &format!("{}{}", s.name(), if rf { "+rf" } else { "" }),
        )
        .u64("plan_digest", u64::from(plan.digest()))
        .str("plan", &plan.to_string());
    Ok(w.finish())
}

fn handle_stats(state: &ServeState, pool: Option<&WorkerPool>) -> String {
    let o = &state.ops;
    let mut requests = ObjWriter::new();
    requests
        .u64("build", o.build.get())
        .u64("run", o.run.get())
        .u64("trace", o.trace.get())
        .u64("plan", o.plan.get())
        .u64("stats", o.stats.get())
        .u64("metrics", o.metrics.get())
        .u64("errors", o.errors.get());
    let c = state.cache.stats();
    let mut cache = ObjWriter::new();
    cache
        .u64("lookups", c.lookups)
        .u64("hits", c.hits)
        .u64("store_hits", c.store_hits)
        .u64("misses", c.misses)
        .u64("poisoned", c.poisoned)
        .u64("inserts", c.inserts)
        .u64("evictions", c.evictions)
        .u64("uncached", c.uncached)
        .u64("build_failures", c.build_failures)
        .u64("flight_waits", c.flight_waits)
        .u64("entries", c.entries)
        .u64("resident_bytes", c.resident_bytes)
        .u64("budget_bytes", c.budget_bytes);
    let mut w = ObjWriter::new();
    w.bool("ok", true)
        .str("op", "stats")
        .u64("started_at", state.started_at())
        .u64("uptime_seconds", state.uptime_seconds())
        .raw("requests", &requests.finish())
        .raw("cache", &cache.finish());
    if let Some(store) = state.cache.store() {
        let s = store.stats();
        let mut sw = ObjWriter::new();
        sw.u64("entries", s.entries)
            .u64("scanned", s.scanned)
            .u64("quarantined", s.quarantined)
            .u64("tmp_cleaned", s.tmp_cleaned)
            .u64("loads", s.loads)
            .u64("load_failures", s.load_failures)
            .u64("spills", s.spills)
            .u64("spill_failures", s.spill_failures);
        w.raw("store", &sw.finish());
    }
    if let Some(p) = pool {
        let mut pw = ObjWriter::new();
        pw.u64("threads", p.threads() as u64)
            .u64("queued", p.queued())
            .u64("executed", p.executed())
            .u64("in_flight", p.in_flight())
            .u64("queue_depth", p.queue_depth())
            .u64("panics", p.panics());
        w.raw("pool", &pw.finish());
    }
    w.finish()
}

/// The `metrics` op: sync ambient gauges, snapshot the registry, and
/// render it in the requested format. The JSON form nests the full
/// snapshot under `"metrics"`; the text form embeds the Prometheus
/// exposition as the `"text"` string (the protocol stays one JSON
/// object per line either way).
fn handle_metrics(state: &ServeState, pool: Option<&WorkerPool>, format: MetricsFormat) -> String {
    sync_ambient(state, pool);
    let snap = state.metrics.registry.snapshot();
    let mut w = ObjWriter::new();
    w.bool("ok", true)
        .str("op", "metrics")
        .u64("started_at", state.started_at())
        .u64("uptime_seconds", state.uptime_seconds());
    match format {
        MetricsFormat::Json => w.str("format", "json").raw("metrics", &snap.to_json()),
        MetricsFormat::Text => w.str("format", "text").str("text", &snap.to_prometheus()),
    };
    w.finish()
}

/// Handles one parsed request, returning the response line (without the
/// trailing newline). Pure dispatch: every failure becomes a typed error
/// response; nothing here panics on any input. Telemetry rides along —
/// each request bumps its `serve.req.<op>` counter and lands one
/// observation in its `serve.op.<op>.us` service-time histogram — but
/// none of it leaks into the response bytes of the four pure ops.
pub fn handle_request(state: &ServeState, req: &Request, pool: Option<&WorkerPool>) -> String {
    handle_request_at(state, req, pool, Instant::now())
}

/// [`handle_request`] with an explicit admission instant: the request's
/// `deadline_ms` budget is measured from `admitted` (when the line came
/// off the socket), so time spent queued behind other work counts
/// against it. Expiry is checked here at dequeue — work the client has
/// given up on is never started — and again between the build and run
/// phases of `run`/`trace`.
pub fn handle_request_at(
    state: &ServeState,
    req: &Request,
    pool: Option<&WorkerPool>,
    admitted: Instant,
) -> String {
    let handler_start = Instant::now();
    let deadline = Deadline::of(req, admitted);
    let (op, result) = match req {
        Request::Build { bench, spec, .. } => {
            state.ops.build.inc();
            (
                "build",
                Deadline::check(deadline).and_then(|()| handle_build(state, bench, spec)),
            )
        }
        Request::Run {
            bench,
            spec,
            max_insns,
            ..
        } => {
            state.ops.run.inc();
            (
                "run",
                Deadline::check(deadline)
                    .and_then(|()| handle_run(state, bench, spec, *max_insns, deadline)),
            )
        }
        Request::Trace {
            bench,
            spec,
            max_insns,
            ..
        } => {
            state.ops.trace.inc();
            (
                "trace",
                Deadline::check(deadline)
                    .and_then(|()| handle_trace(state, bench, spec, *max_insns, deadline)),
            )
        }
        Request::Plan {
            bench, scheme, rf, ..
        } => {
            state.ops.plan.inc();
            (
                "plan",
                Deadline::check(deadline).and_then(|()| handle_plan(state, bench, scheme, *rf)),
            )
        }
        Request::Stats => {
            state.ops.stats.inc();
            ("stats", Ok(handle_stats(state, pool)))
        }
        Request::Metrics { format } => {
            state.ops.metrics.inc();
            ("metrics", Ok(handle_metrics(state, pool, *format)))
        }
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            let mut w = ObjWriter::new();
            w.bool("ok", true).str("op", "shutdown");
            ("shutdown", Ok(w.finish()))
        }
    };
    let line = match result {
        Ok(line) => line,
        Err(e) => {
            state.ops.errors.inc();
            if matches!(e, ServeError::Timeout { .. }) {
                state.metrics.deadline_exceeded.inc();
            }
            state.metrics.record_error(e.kind());
            e.render()
        }
    };
    state
        .metrics
        .op_us(op)
        .observe_micros(handler_start.elapsed());
    line
}

/// Handles one raw request line end to end (parse + dispatch).
pub fn handle_line(state: &ServeState, line: &str, pool: Option<&WorkerPool>) -> String {
    handle_line_at(state, line, pool, Instant::now())
}

/// [`handle_line`] with an explicit admission instant (see
/// [`handle_request_at`]).
pub fn handle_line_at(
    state: &ServeState,
    line: &str,
    pool: Option<&WorkerPool>,
    admitted: Instant,
) -> String {
    match parse_request(line) {
        Ok(req) => handle_request_at(state, &req, pool, admitted),
        Err(e) => {
            state.ops.errors.inc();
            state.metrics.record_error(e.kind());
            e.render()
        }
    }
}

/// One bounded line read.
enum LineRead {
    /// A complete line (newline stripped), within the cap.
    Line(Vec<u8>),
    /// The line exceeded the cap; the overflow was discarded up to (and
    /// including) the next newline.
    Oversized,
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line of at most `max` bytes. An oversized
/// line is *discarded as it streams in* — the server never buffers more
/// than `max` bytes per connection, so an abusive client cannot balloon
/// memory. `stop` is polled on every read timeout (the connection's
/// read timeout is the shutdown latency bound): when it reports true,
/// the read ends as a clean EOF.
fn read_line_bounded<R: BufRead>(
    r: &mut R,
    max: usize,
    stop: &dyn Fn() -> bool,
) -> std::io::Result<LineRead> {
    let mut line = Vec::new();
    let fill = |r: &mut R| -> std::io::Result<Option<()>> {
        loop {
            match r.fill_buf() {
                Ok(_) => return Ok(Some(())),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop() {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    };
    loop {
        if fill(r)?.is_none() {
            return Ok(LineRead::Eof);
        }
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return if line.is_empty() {
                Ok(LineRead::Eof)
            } else {
                // Trailing unterminated line: serve it (clients that
                // close after the last request without a final newline).
                Ok(LineRead::Line(std::mem::take(&mut line)))
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let fits = line.len() + pos <= max;
                if fits {
                    line.extend_from_slice(&chunk[..pos]);
                }
                r.consume(pos + 1);
                return if fits {
                    Ok(LineRead::Line(line))
                } else {
                    Ok(LineRead::Oversized)
                };
            }
            None => {
                let n = chunk.len();
                if line.len() + n <= max {
                    line.extend_from_slice(chunk);
                    r.consume(n);
                } else {
                    // Over the cap mid-line: drop what we have and
                    // stream-discard until the newline.
                    line.clear();
                    r.consume(n);
                    loop {
                        if fill(r)?.is_none() {
                            return Ok(LineRead::Eof);
                        }
                        let chunk = r.fill_buf()?;
                        if chunk.is_empty() {
                            return Ok(LineRead::Eof);
                        }
                        match chunk.iter().position(|&b| b == b'\n') {
                            Some(pos) => {
                                r.consume(pos + 1);
                                return Ok(LineRead::Oversized);
                            }
                            None => {
                                let n = chunk.len();
                                r.consume(n);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Monotonic connection-id source for the structured log; ids are
/// process-global so grepping the log for `"conn":N` isolates one
/// client's lifetime.
static CONN_IDS: AtomicU64 = AtomicU64::new(0);

/// Serves one connection: parse lines, park each request on the pool,
/// write each reply. Returns when the client disconnects or the server
/// shuts down; `path` is the server's own socket, dialed once to wake
/// the accept loop when this connection carried the `shutdown` op.
fn serve_connection(
    state: &Arc<ServeState>,
    pool: &Arc<WorkerPool>,
    stream: UnixStream,
    path: &Path,
) {
    let conn = CONN_IDS.fetch_add(1, Ordering::Relaxed) + 1;
    log::event(Level::Info, "conn_open")
        .u64("conn", conn)
        .emit();
    let requests = serve_requests(state, pool, stream, path, conn);
    log::event(Level::Info, "conn_close")
        .u64("conn", conn)
        .u64("requests", requests)
        .emit();
}

/// The body of [`serve_connection`]; returns how many request lines
/// this connection answered (for the `conn_close` log event).
fn serve_requests(
    state: &Arc<ServeState>,
    pool: &Arc<WorkerPool>,
    stream: UnixStream,
    path: &Path,
    conn: u64,
) -> u64 {
    // The read timeout bounds shutdown latency: an idle reader wakes at
    // this cadence, polls the flag, and exits instead of blocking a
    // teardown join forever. The write timeout turns a full send buffer
    // into 50 ms ticks `write_line_bounded` can count against the
    // stall budget, so a slow-loris client is bounded the same way.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return 0,
    };
    let mut reader = BufReader::new(stream);
    let stop = || state.shutdown_requested();
    let mut seq = 0u64;
    loop {
        if state.shutdown_requested() {
            return seq;
        }
        let line = match read_line_bounded(&mut reader, MAX_LINE_BYTES, &stop) {
            Err(_) | Ok(LineRead::Eof) => return seq,
            Ok(LineRead::Oversized) => {
                state.ops.errors.inc();
                let err = ServeError::OversizedLine {
                    limit: MAX_LINE_BYTES,
                };
                state.metrics.record_error(err.kind());
                let resp = err.render();
                seq += 1;
                state.metrics.bytes_out.add(resp.len() as u64 + 1);
                log::event(Level::Debug, "request")
                    .u64("conn", conn)
                    .u64("seq", seq)
                    .str("note", "oversized line discarded")
                    .u64("bytes_out", resp.len() as u64 + 1)
                    .emit();
                if write_line_bounded(&mut writer, &resp, state, &stop).is_err() {
                    return seq;
                }
                continue;
            }
            Ok(LineRead::Line(bytes)) => bytes,
        };
        // Every line — even an empty one — gets exactly one response;
        // clients pipeline on that 1:1 invariant, so silently skipping
        // a blank line would desynchronize (and wedge) them.
        let bytes_in = line.len() as u64 + 1;
        state.metrics.bytes_in.add(bytes_in);
        let req_start = Instant::now();
        // Admission control: a queue already at the bound means this
        // request would wait behind `max_queue` jobs; shed it with a
        // typed, retryable `overloaded` instead of queueing unboundedly.
        let depth = pool.queue_depth();
        if depth >= state.max_queue {
            let err = ServeError::Overloaded {
                queue_depth: depth,
                limit: state.max_queue,
            };
            state.ops.errors.inc();
            state.metrics.record_error(err.kind());
            state.metrics.shed.inc();
            let resp = err.render();
            seq += 1;
            state.metrics.bytes_out.add(resp.len() as u64 + 1);
            log::event(Level::Debug, "request")
                .u64("conn", conn)
                .u64("seq", seq)
                .str("note", "shed: admission queue full")
                .u64("queue_depth", depth)
                .u64("bytes_out", resp.len() as u64 + 1)
                .emit();
            if write_line_bounded(&mut writer, &resp, state, &stop).is_err() {
                return seq;
            }
            continue;
        }
        let line = String::from_utf8_lossy(&line).into_owned();
        // Dispatch to the pool and wait for this request's reply; the
        // job never dispatches nested jobs, so the pool cannot deadlock.
        let (tx, rx) = mpsc::channel::<String>();
        let st = Arc::clone(state);
        let pl = Arc::clone(pool);
        let admitted = req_start;
        let accepted = pool.execute(Box::new(move || {
            let resp = handle_line_at(&st, &line, Some(&pl), admitted);
            let _ = tx.send(resp);
        }));
        let resp = if accepted {
            match rx.recv() {
                Ok(r) => r,
                // The job panicked past the renderer (it shouldn't): the
                // channel closes; answer with a typed error, not silence.
                Err(_) => ServeError::BuildFailed {
                    detail: "internal: request handler died".into(),
                }
                .render(),
            }
        } else {
            ServeError::Unsupported {
                detail: "server is shutting down".into(),
            }
            .render()
        };
        seq += 1;
        let bytes_out = resp.len() as u64 + 1;
        state.metrics.bytes_out.add(bytes_out);
        log::event(Level::Debug, "request")
            .u64("conn", conn)
            .u64("seq", seq)
            .u64("bytes_in", bytes_in)
            .u64("bytes_out", bytes_out)
            .u64(
                "us",
                req_start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            )
            .emit();
        if write_line_bounded(&mut writer, &resp, state, &stop).is_err() {
            return seq;
        }
        if state.shutdown_requested() {
            // This connection delivered (or raced with) the `shutdown`
            // op; the accept loop is still parked in `incoming()`, so
            // dial it awake before leaving.
            let _ = UnixStream::connect(path);
            return seq;
        }
    }
}

/// Writes `line` + newline with a bounded stall. The stream's 50 ms
/// write timeout turns a full send buffer into `WouldBlock`/`TimedOut`
/// ticks; after [`ServeState::write_stall_ms`] with **no forward
/// progress** (or on shutdown) the write is abandoned with an error and
/// the caller drops the connection. A slow-loris client that stops
/// draining its socket therefore costs a reader thread at most the
/// stall budget, instead of pinning it forever; a merely *slow* client
/// that keeps draining resets the budget on every accepted byte.
fn write_line_bounded(
    w: &mut UnixStream,
    line: &str,
    state: &ServeState,
    stop: &dyn Fn() -> bool,
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    let budget = Duration::from_millis(state.write_stall_ms);
    let mut off = 0usize;
    let mut last_progress = Instant::now();
    while off < buf.len() {
        match w.write(&buf[off..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "peer stopped reading",
                ))
            }
            Ok(n) => {
                off += n;
                last_progress = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop() || last_progress.elapsed() >= budget {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "write stalled past budget",
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    w.flush()
}

/// A running daemon bound to a Unix socket.
pub struct Server {
    path: PathBuf,
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `path` (removing any stale socket file) and starts serving.
    ///
    /// # Errors
    ///
    /// I/O errors binding the socket.
    pub fn start(path: &Path, config: ServeConfig) -> std::io::Result<Server> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let state = Arc::new(ServeState::try_new(&config)?);
        let pool = Arc::new(WorkerPool::new_instrumented(
            config.threads,
            Arc::clone(&state.metrics.pool_wall),
        ));
        let mut start_ev = log::event(Level::Info, "serve_start")
            .str("socket", &path.to_string_lossy())
            .u64("threads", config.threads as u64)
            .u64("cache_bytes", config.cache_bytes)
            .u64("max_queue", config.max_queue);
        if let Some(dir) = &config.cache_dir {
            start_ev = start_ev.str("cache_dir", &dir.to_string_lossy());
        }
        start_ev.emit();
        let accept_state = Arc::clone(&state);
        let accept_path = path.to_path_buf();
        let accept = std::thread::Builder::new()
            .name("rtdc-serve-accept".into())
            .spawn(move || {
                // `pool` lives (and on drop, drains) inside the accept
                // thread: joining the server joins all in-flight work.
                let pool = pool;
                let mut readers: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if accept_state.shutdown_requested() {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let st = Arc::clone(&accept_state);
                    let pl = Arc::clone(&pool);
                    let wake = accept_path.clone();
                    let h = std::thread::Builder::new()
                        .name("rtdc-serve-conn".into())
                        .spawn(move || serve_connection(&st, &pl, stream, &wake))
                        .expect("spawn connection reader");
                    readers.push(h);
                    readers.retain(|h| !h.is_finished());
                }
                for h in readers {
                    let _ = h.join();
                }
                // Final telemetry flush: with every reader joined the
                // counters are quiescent, so this snapshot is the exact
                // totals for the daemon's lifetime.
                sync_ambient(&accept_state, Some(&pool));
                log::event(Level::Info, "metrics_snapshot")
                    .raw(
                        "metrics",
                        &accept_state.metrics.registry.snapshot().to_json(),
                    )
                    .emit();
            })
            .expect("spawn accept loop");
        Ok(Server {
            path: path.to_path_buf(),
            state,
            accept: Some(accept),
        })
    }

    /// The shared state (tests poke counters and the cache through this).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// The socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Requests shutdown and wakes the accept loop.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.path);
    }

    /// Waits for the accept loop (and with it, all in-flight work) to
    /// finish. Call [`Server::shutdown`] first, or send a `shutdown`
    /// request; otherwise this blocks until a client does.
    pub fn join(mut self) {
        // A `shutdown` op flips the flag from a worker; the accept loop
        // still needs a wake-up connection to notice.
        if self.state.shutdown_requested() {
            let _ = UnixStream::connect(&self.path);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        let _ = UnixStream::connect(&self.path);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

// Teardown converges from either direction. A client `shutdown` op:
// the handling connection writes its reply, sees the flag, dials the
// wake-up connection, and the accept loop breaks. A host-side
// `shutdown()`/`Drop`: the flag plus wake-up dial stop the accept loop,
// and every idle reader notices the flag at its next read timeout (the
// 50ms cadence set on each connection), so joining never waits on a
// blocked read.

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ServeState {
        ServeState::new(&ServeConfig {
            threads: 2,
            cache_bytes: 16 << 20,
            max_insns: 50_000_000,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn build_and_run_known_answer_program() {
        let st = state();
        let b = handle_line(&st, r#"{"op":"build","bench":"sort","scheme":"d"}"#, None);
        assert!(b.contains(r#""ok":true"#), "{b}");
        assert!(b.contains(r#""label":"d""#), "{b}");
        let r = handle_line(&st, r#"{"op":"run","bench":"sort","scheme":"d"}"#, None);
        assert!(r.contains(r#""ok":true"#), "{r}");
        assert!(r.contains(r#""exit_code":"#), "{r}");
        assert!(r.contains(r#""stats":{"insns":"#), "{r}");
        // The second run hits the cache; the response bytes must not care.
        let r2 = handle_line(&st, r#"{"op":"run","bench":"sort","scheme":"d"}"#, None);
        assert_eq!(r, r2, "responses must be pure functions of the request");
        let s = st.cache.stats();
        assert_eq!((s.misses, s.hits), (1, 2));
    }

    #[test]
    fn run_matches_direct_runner() {
        let st = state();
        let resp = handle_line(
            &st,
            r#"{"op":"run","bench":"crc32","scheme":"cp+rf"}"#,
            None,
        );
        let v = crate::json::parse(&resp).unwrap();
        let got = crate::protocol::parse_stats(v.get("stats").unwrap()).unwrap();
        let program = resolve_program("crc32").unwrap();
        let plan = CompressionPlan::uniform(
            Scheme::CodePack,
            true,
            PlanSource::Heuristic,
            &Selection::all_compressed(program.procedures.len()),
        );
        let image = build_planned(&program, &plan).unwrap();
        let want = run_image(&image, st.sim, st.max_insns).unwrap();
        assert_eq!(got, want.stats);
    }

    #[test]
    fn trace_counts_are_consistent() {
        let st = state();
        let resp = handle_line(&st, r#"{"op":"trace","bench":"sort"}"#, None);
        let v = crate::json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(crate::json::Json::as_bool), Some(true));
        let events = v.get("events").unwrap();
        let fetches = events
            .get("fetch")
            .and_then(crate::json::Json::as_u64)
            .unwrap();
        let commits = events
            .get("commit")
            .and_then(crate::json::Json::as_u64)
            .unwrap();
        assert!(fetches > 0 && commits > 0);
        // A native image never takes the decompression exception.
        assert_eq!(
            events.get("exc").and_then(crate::json::Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn unknown_targets_are_typed_errors() {
        let st = state();
        for (line, kind) in [
            (r#"{"op":"run","bench":"nope"}"#, "unknown-bench"),
            (
                r#"{"op":"run","bench":"sort","scheme":"zz"}"#,
                "unknown-scheme",
            ),
            (
                r#"{"op":"build","bench":"sort","plan":"not a plan"}"#,
                "bad-plan",
            ),
            (
                r#"{"op":"plan","bench":"sort","scheme":"d"}"#,
                "unsupported",
            ),
            (
                r#"{"op":"plan","bench":"nope","scheme":"d"}"#,
                "unknown-bench",
            ),
        ] {
            let resp = handle_line(&st, line, None);
            assert!(
                resp.contains(&format!(r#""error":"{kind}""#)),
                "{line} -> {resp}"
            );
        }
        assert_eq!(st.ops.errors.get(), 5);
        // Every kind surfaced in the registry too.
        let snap = st.metrics.registry.snapshot();
        assert_eq!(snap.value("serve.err.total"), Some(5));
        assert_eq!(snap.value("serve.err.unknown-bench"), Some(2));
        assert_eq!(snap.value("serve.err.unknown-scheme"), Some(1));
        assert_eq!(snap.value("serve.err.bad-plan"), Some(1));
        assert_eq!(snap.value("serve.err.unsupported"), Some(1));
    }

    #[test]
    fn plan_build_shares_cache_with_equivalent_digest() {
        let st = state();
        // `plan` on a tiny benchmark, then `build` with the returned text:
        // the digest in both responses must agree.
        let p = handle_line(
            &st,
            r#"{"op":"plan","bench":"tiny-loop","scheme":"d"}"#,
            None,
        );
        let v = crate::json::parse(&p).unwrap();
        let digest = v
            .get("plan_digest")
            .and_then(crate::json::Json::as_u64)
            .unwrap();
        let text = v.get("plan").and_then(crate::json::Json::as_str).unwrap();
        let mut req = ObjWriter::new();
        req.str("op", "build")
            .str("bench", "tiny-loop")
            .str("plan", text);
        let b = handle_line(&st, &req.finish(), None);
        let bv = crate::json::parse(&b).unwrap();
        assert_eq!(
            bv.get("plan_digest").and_then(crate::json::Json::as_u64),
            Some(digest)
        );
    }

    #[test]
    fn metrics_op_reports_both_formats() {
        let st = state();
        handle_line(&st, r#"{"op":"run","bench":"sort","scheme":"d"}"#, None);
        let m = handle_line(&st, r#"{"op":"metrics"}"#, None);
        let v = crate::json::parse(&m).unwrap();
        assert_eq!(v.get("ok").and_then(crate::json::Json::as_bool), Some(true));
        let metrics = v.get("metrics").unwrap();
        let counters = metrics.get("counters").unwrap();
        assert_eq!(
            counters
                .get("serve.req.run")
                .and_then(crate::json::Json::as_u64),
            Some(1)
        );
        assert_eq!(
            counters
                .get("serve.sim.runs.d")
                .and_then(crate::json::Json::as_u64),
            Some(1)
        );
        // The run's service time landed in its histogram.
        let h = metrics
            .get("histograms")
            .and_then(|h| h.get("serve.op.run.us"))
            .unwrap();
        assert_eq!(h.get("count").and_then(crate::json::Json::as_u64), Some(1));
        // Ambient cache gauges mirror the internal counters exactly.
        let gauges = metrics.get("gauges").unwrap();
        let s = st.cache.stats();
        assert_eq!(
            gauges
                .get("serve.cache.misses")
                .and_then(crate::json::Json::as_u64),
            Some(s.misses)
        );
        let t = handle_line(&st, r#"{"op":"metrics","format":"text"}"#, None);
        let tv = crate::json::parse(&t).unwrap();
        let text = tv.get("text").and_then(crate::json::Json::as_str).unwrap();
        assert!(text.contains("# TYPE serve_req_run counter\nserve_req_run 1\n"));
        assert!(text.contains("serve_op_run_us_count 1\n"));
    }

    #[test]
    fn stats_reports_uptime_and_flight_waits() {
        let st = state();
        let resp = handle_line(&st, r#"{"op":"stats"}"#, None);
        let v = crate::json::parse(&resp).unwrap();
        assert!(v
            .get("uptime_seconds")
            .and_then(crate::json::Json::as_u64)
            .is_some());
        assert_eq!(
            v.get("started_at").and_then(crate::json::Json::as_u64),
            Some(st.started_at())
        );
        let cache = v.get("cache").unwrap();
        assert_eq!(
            cache
                .get("flight_waits")
                .and_then(crate::json::Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn expired_deadline_is_a_typed_timeout() {
        let st = state();
        let req = parse_request(r#"{"op":"run","bench":"sort","deadline_ms":1}"#).unwrap();
        // Admitted 50 ms ago with a 1 ms budget: expired at dequeue.
        let admitted = Instant::now() - Duration::from_millis(50);
        let resp = handle_request_at(&st, &req, None, admitted);
        assert!(resp.contains(r#""error":"timeout""#), "{resp}");
        assert_eq!(st.metrics.deadline_exceeded.get(), 1);
        assert_eq!(st.ops.errors.get(), 1);
        // A generous budget admitted just now succeeds.
        let req = parse_request(r#"{"op":"run","bench":"sort","deadline_ms":60000}"#).unwrap();
        let resp = handle_request_at(&st, &req, None, Instant::now());
        assert!(resp.contains(r#""ok":true"#), "{resp}");
        // `deadline_ms` must not leak into the pure response bytes.
        let plain = handle_line(&st, r#"{"op":"run","bench":"sort"}"#, None);
        assert_eq!(resp, plain);
    }

    #[test]
    fn stalled_writes_are_bounded_not_forever() {
        use std::os::unix::net::UnixStream as Us;
        let st = ServeState::new(&ServeConfig {
            write_stall_ms: 150,
            ..ServeConfig::default()
        });
        let (mut a, b) = Us::pair().unwrap();
        let _ = a.set_write_timeout(Some(Duration::from_millis(50)));
        // The peer never reads: a multi-megabyte line must fill the
        // socket buffer and then abort within the stall budget.
        let big = "x".repeat(8 << 20);
        let start = Instant::now();
        let err = write_line_bounded(&mut a, &big, &st, &(|| false)).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ),
            "{err}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "stall must be bounded, took {:?}",
            start.elapsed()
        );
        drop(b);
        // A draining peer sees the whole line.
        let (mut a, b) = Us::pair().unwrap();
        let _ = a.set_write_timeout(Some(Duration::from_millis(50)));
        let reader = std::thread::spawn(move || {
            let mut r = BufReader::new(b);
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            line.len()
        });
        write_line_bounded(&mut a, &big, &st, &(|| false)).unwrap();
        drop(a);
        assert_eq!(reader.join().unwrap(), big.len() + 1);
    }

    #[test]
    fn bounded_reader_discards_oversized_lines() {
        let data = {
            let mut d = vec![b'a'; 100];
            d.push(b'\n');
            d.extend_from_slice(b"{\"op\":\"stats\"}\n");
            d
        };
        let mut r = BufReader::with_capacity(16, &data[..]);
        let stop = || false;
        assert!(matches!(
            read_line_bounded(&mut r, 10, &stop).unwrap(),
            LineRead::Oversized
        ));
        match read_line_bounded(&mut r, 10_000, &stop).unwrap() {
            LineRead::Line(l) => assert_eq!(l, b"{\"op\":\"stats\"}"),
            _ => panic!("second line must parse after an oversized first"),
        }
        assert!(matches!(
            read_line_bounded(&mut r, 10, &stop).unwrap(),
            LineRead::Eof
        ));
    }
}
