//! A minimal blocking client for the `rtdc-serve` socket protocol.
//!
//! One request out, one response line back — the transport mirror of
//! [`crate::server::handle_line`]. Used by the test batteries, by
//! `servebench`, and by `rtdc-run --serve`.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use rtdc_obs::HistogramSnapshot;

use crate::json::{self, Json, ObjWriter};

/// A connected client.
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to the daemon at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors connecting.
    pub fn connect(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one raw request line (newline appended) and reads one
    /// response line (newline stripped).
    ///
    /// # Errors
    ///
    /// I/O errors, or an unexpected EOF before the response line.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        while resp.ends_with('\n') || resp.ends_with('\r') {
            resp.pop();
        }
        Ok(resp)
    }

    /// Sends one request and parses the response as JSON.
    ///
    /// # Errors
    ///
    /// I/O errors; a malformed response line (which the server never
    /// produces) is reported as [`std::io::ErrorKind::InvalidData`].
    pub fn request(&mut self, line: &str) -> std::io::Result<Json> {
        let resp = self.request_raw(line)?;
        json::parse(&resp).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response `{resp}`: {e}"),
            )
        })
    }

    /// Requests an orderly server shutdown.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        let _ = self.request_raw(r#"{"op":"shutdown"}"#)?;
        Ok(())
    }

    /// Fetches the daemon's full telemetry snapshot (the `metrics` op,
    /// JSON format) as the parsed response object. The snapshot proper
    /// is its `"metrics"` field; histograms inside it parse with
    /// [`parse_histogram`].
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn metrics(&mut self) -> std::io::Result<Json> {
        self.request(r#"{"op":"metrics"}"#)
    }
}

/// Reconstructs a histogram from its `metrics`-op JSON form
/// (`{"count":..,"sum":..,"buckets":[[index,count],..]}`) — the client
/// half of the daemon's snapshot rendering, shared by `rtdc-top` and
/// `servebench`. `None` for any structural mismatch.
pub fn parse_histogram(v: &Json) -> Option<HistogramSnapshot> {
    let count = v.get("count").and_then(Json::as_u64)?;
    let sum = v.get("sum").and_then(Json::as_u64)?;
    let Json::Arr(items) = v.get("buckets")? else {
        return None;
    };
    let buckets = items
        .iter()
        .map(|item| match item {
            Json::Arr(pair) if pair.len() == 2 => {
                let i = pair[0].as_u64()?;
                let n = pair[1].as_u64()?;
                u8::try_from(i).ok().map(|i| (i, n))
            }
            _ => None,
        })
        .collect::<Option<Vec<_>>>()?;
    Some(HistogramSnapshot {
        count,
        sum,
        buckets,
    })
}

/// Renders a `build`/`run`/`trace` request line. `scheme` is a CLI-style
/// argument (`"native"`, `"d"`, `"cp+rf"`, ...); `max_insns` only
/// applies to `run`/`trace`.
pub fn request_line(op: &str, bench: &str, scheme: &str, max_insns: Option<u64>) -> String {
    let mut w = ObjWriter::new();
    w.str("op", op).str("bench", bench);
    if scheme != "native" {
        w.str("scheme", scheme);
    }
    if let Some(n) = max_insns {
        w.u64("max_insns", n);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_round_trips_from_snapshot_json() {
        let h = rtdc_obs::Histogram::default();
        for v in [0u64, 1, 5, 5, 900] {
            h.observe(v);
        }
        let snap = h.snapshot();
        let rendered = format!(
            "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            snap.count,
            snap.sum,
            snap.buckets
                .iter()
                .map(|&(i, n)| format!("[{i},{n}]"))
                .collect::<Vec<_>>()
                .join(",")
        );
        let back = parse_histogram(&json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.quantile(0.5), snap.quantile(0.5));
    }

    #[test]
    fn request_lines_are_canonical() {
        assert_eq!(
            request_line("run", "sort", "d+rf", None),
            r#"{"op":"run","bench":"sort","scheme":"d+rf"}"#
        );
        assert_eq!(
            request_line("build", "go", "native", Some(5)),
            r#"{"op":"build","bench":"go","max_insns":5}"#
        );
    }
}
