//! A minimal blocking client for the `rtdc-serve` socket protocol.
//!
//! One request out, one response line back — the transport mirror of
//! [`crate::server::handle_line`]. Used by the test batteries, by
//! `servebench`, and by `rtdc-run --serve`.
//!
//! Resilience is opt-in and bounded: [`connect_with_retry`] rides out a
//! daemon that is still binding its socket (or restarting), and
//! [`Client::request_retrying`] retries typed `overloaded` sheds with
//! jittered exponential backoff. The jitter comes from a caller-owned
//! [`Rng64`], so a fixed seed makes the whole retry schedule
//! reproducible.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use rtdc_obs::HistogramSnapshot;
use rtdc_rng::Rng64;

use crate::json::{self, Json, ObjWriter};

/// Bounded-retry parameters for [`connect_with_retry`] and
/// [`Client::request_retrying`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). 1 disables retries.
    pub attempts: u32,
    /// Backoff before the first retry, in ms; doubles per retry.
    pub base_delay_ms: u64,
    /// Backoff ceiling, in ms (pre-jitter).
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base_delay_ms: 10,
            max_delay_ms: 500,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (0-based): exponential
    /// from `base_delay_ms`, capped at `max_delay_ms`, then jittered to
    /// 50–100% so a thundering herd of shed clients decorrelates.
    /// Deterministic for a given `rng` state.
    pub fn delay(&self, retry: u32, rng: &mut Rng64) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << retry.min(20))
            .min(self.max_delay_ms);
        let jittered = (exp as f64) * (0.5 + rng.gen_f64() / 2.0);
        Duration::from_micros((jittered * 1000.0) as u64)
    }
}

/// Connects to `path`, retrying connect-refused / not-found per
/// `policy` — the client half of riding out a daemon restart.
///
/// # Errors
///
/// The last connect error once attempts are exhausted; non-retryable
/// errors (permissions, etc.) fail immediately.
pub fn connect_with_retry(
    path: &Path,
    policy: &RetryPolicy,
    rng: &mut Rng64,
) -> std::io::Result<Client> {
    let mut retry = 0u32;
    loop {
        match Client::connect(path) {
            Ok(c) => return Ok(c),
            Err(e) => {
                let transient = matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::NotFound
                );
                if !transient || retry + 1 >= policy.attempts.max(1) {
                    return Err(e);
                }
                std::thread::sleep(policy.delay(retry, rng));
                retry += 1;
            }
        }
    }
}

/// A connected client.
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to the daemon at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors connecting.
    pub fn connect(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one raw request line (newline appended) and reads one
    /// response line (newline stripped).
    ///
    /// # Errors
    ///
    /// I/O errors, or an unexpected EOF before the response line.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        while resp.ends_with('\n') || resp.ends_with('\r') {
            resp.pop();
        }
        Ok(resp)
    }

    /// Sends one request and parses the response as JSON.
    ///
    /// # Errors
    ///
    /// I/O errors; a malformed response line (which the server never
    /// produces) is reported as [`std::io::ErrorKind::InvalidData`].
    pub fn request(&mut self, line: &str) -> std::io::Result<Json> {
        let resp = self.request_raw(line)?;
        json::parse(&resp).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response `{resp}`: {e}"),
            )
        })
    }

    /// Sends one request, retrying typed `overloaded` sheds with
    /// jittered backoff per `policy`. Only sheds are retried — the
    /// server guarantees a shed request was never started, so the retry
    /// cannot double-execute work. Any other response (success or
    /// error) is returned as-is; attempts exhausted returns the last
    /// shed response, so callers always see a well-formed line.
    ///
    /// # Errors
    ///
    /// I/O errors from the transport.
    pub fn request_retrying(
        &mut self,
        line: &str,
        policy: &RetryPolicy,
        rng: &mut Rng64,
    ) -> std::io::Result<String> {
        let mut retry = 0u32;
        loop {
            let resp = self.request_raw(line)?;
            let shed = json::parse(&resp)
                .ok()
                .and_then(|v| v.get("error").and_then(Json::as_str).map(str::to_string))
                .is_some_and(|kind| kind == "overloaded");
            if !shed || retry + 1 >= policy.attempts.max(1) {
                return Ok(resp);
            }
            std::thread::sleep(policy.delay(retry, rng));
            retry += 1;
        }
    }

    /// Requests an orderly server shutdown.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        let _ = self.request_raw(r#"{"op":"shutdown"}"#)?;
        Ok(())
    }

    /// Fetches the daemon's full telemetry snapshot (the `metrics` op,
    /// JSON format) as the parsed response object. The snapshot proper
    /// is its `"metrics"` field; histograms inside it parse with
    /// [`parse_histogram`].
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn metrics(&mut self) -> std::io::Result<Json> {
        self.request(r#"{"op":"metrics"}"#)
    }
}

/// Reconstructs a histogram from its `metrics`-op JSON form
/// (`{"count":..,"sum":..,"buckets":[[index,count],..]}`) — the client
/// half of the daemon's snapshot rendering, shared by `rtdc-top` and
/// `servebench`. `None` for any structural mismatch.
pub fn parse_histogram(v: &Json) -> Option<HistogramSnapshot> {
    let count = v.get("count").and_then(Json::as_u64)?;
    let sum = v.get("sum").and_then(Json::as_u64)?;
    let Json::Arr(items) = v.get("buckets")? else {
        return None;
    };
    let buckets = items
        .iter()
        .map(|item| match item {
            Json::Arr(pair) if pair.len() == 2 => {
                let i = pair[0].as_u64()?;
                let n = pair[1].as_u64()?;
                u8::try_from(i).ok().map(|i| (i, n))
            }
            _ => None,
        })
        .collect::<Option<Vec<_>>>()?;
    Some(HistogramSnapshot {
        count,
        sum,
        buckets,
    })
}

/// Renders a `build`/`run`/`trace` request line. `scheme` is a CLI-style
/// argument (`"native"`, `"d"`, `"cp+rf"`, ...); `max_insns` only
/// applies to `run`/`trace`.
pub fn request_line(op: &str, bench: &str, scheme: &str, max_insns: Option<u64>) -> String {
    request_line_opts(op, bench, scheme, max_insns, None)
}

/// [`request_line`] plus an optional `deadline_ms` budget.
pub fn request_line_opts(
    op: &str,
    bench: &str,
    scheme: &str,
    max_insns: Option<u64>,
    deadline_ms: Option<u64>,
) -> String {
    let mut w = ObjWriter::new();
    w.str("op", op).str("bench", bench);
    if scheme != "native" {
        w.str("scheme", scheme);
    }
    if let Some(n) = max_insns {
        w.u64("max_insns", n);
    }
    if let Some(ms) = deadline_ms {
        w.u64("deadline_ms", ms);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_round_trips_from_snapshot_json() {
        let h = rtdc_obs::Histogram::default();
        for v in [0u64, 1, 5, 5, 900] {
            h.observe(v);
        }
        let snap = h.snapshot();
        let rendered = format!(
            "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            snap.count,
            snap.sum,
            snap.buckets
                .iter()
                .map(|&(i, n)| format!("[{i},{n}]"))
                .collect::<Vec<_>>()
                .join(",")
        );
        let back = parse_histogram(&json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.quantile(0.5), snap.quantile(0.5));
    }

    #[test]
    fn request_lines_are_canonical() {
        assert_eq!(
            request_line("run", "sort", "d+rf", None),
            r#"{"op":"run","bench":"sort","scheme":"d+rf"}"#
        );
        assert_eq!(
            request_line("build", "go", "native", Some(5)),
            r#"{"op":"build","bench":"go","max_insns":5}"#
        );
        assert_eq!(
            request_line_opts("run", "sort", "d", None, Some(250)),
            r#"{"op":"run","bench":"sort","scheme":"d","deadline_ms":250}"#
        );
    }

    #[test]
    fn backoff_is_bounded_jittered_and_seed_deterministic() {
        let policy = RetryPolicy {
            attempts: 6,
            base_delay_ms: 10,
            max_delay_ms: 80,
        };
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut rng = Rng64::seed_from_u64(seed);
            (0..5).map(|r| policy.delay(r, &mut rng)).collect()
        };
        let a = schedule(42);
        assert_eq!(a, schedule(42), "same seed, same schedule");
        // Exponential envelope with 50-100% jitter, capped at max.
        for (retry, d) in a.iter().enumerate() {
            let exp = (10u64 << retry).min(80);
            assert!(
                *d >= Duration::from_millis(exp / 2) && *d <= Duration::from_millis(exp),
                "retry {retry}: {d:?} outside [{}/2, {}] ms",
                exp,
                exp
            );
        }
    }
}
