//! `rtdc-serve` — the build-and-run daemon.
//!
//! ```sh
//! rtdc-serve <socket-path> [--threads N] [--cache-mb N] [--max-insns N]
//!            [--cache-dir PATH] [--max-queue N]
//! rtdc-serve --metrics-dump <socket-path>
//! ```
//!
//! Binds a Unix domain socket and serves newline-delimited JSON requests
//! until a client sends `{"op":"shutdown"}` (or the process is killed;
//! the socket file is unlinked on orderly teardown). Protocol and cache
//! semantics live in the `rtdc_serve` library — this bin is argument
//! parsing and a join.
//!
//! The daemon writes a structured nd-JSON log to stderr (one object per
//! line); `RTDC_LOG` selects the level (`off`, `error`, `warn`, `info`,
//! `debug`, `trace`; default `info`). `--metrics-dump` is a client
//! mode: it connects to a *running* daemon, fetches one telemetry
//! snapshot, and prints it to stdout in the Prometheus text exposition
//! format — the glue for external scrapers and cron jobs.
//!
//! Examples:
//!
//! ```sh
//! rtdc-serve /tmp/rtdc.sock --threads 8 --cache-mb 128 &
//! printf '%s\n' '{"op":"run","bench":"sort","scheme":"d+rf"}' | nc -U /tmp/rtdc.sock
//! rtdc-serve --metrics-dump /tmp/rtdc.sock
//! printf '%s\n' '{"op":"stats"}' '{"op":"shutdown"}' | nc -U /tmp/rtdc.sock
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rtdc_obs::log::{self, Level};
use rtdc_serve::client::Client;
use rtdc_serve::json::Json;
use rtdc_serve::server::{ServeConfig, Server};

const USAGE: &str = "usage: rtdc-serve <socket-path> [--threads N] [--cache-mb N] [--max-insns N] [--cache-dir PATH] [--max-queue N]\n       rtdc-serve --metrics-dump <socket-path>";

/// Client mode: fetch one Prometheus-text snapshot from a running
/// daemon and print it.
fn metrics_dump(path: &Path) -> Result<(), String> {
    let mut client =
        Client::connect(path).map_err(|e| format!("{}: connect: {e}", path.display()))?;
    let resp = client
        .request(r#"{"op":"metrics","format":"text"}"#)
        .map_err(|e| format!("{}: metrics: {e}", path.display()))?;
    let text = resp
        .get("text")
        .and_then(Json::as_str)
        .ok_or_else(|| "unexpected metrics response: missing `text`".to_string())?;
    print!("{text}");
    Ok(())
}

fn run() -> Result<(), String> {
    let mut path: Option<PathBuf> = None;
    let mut dump = false;
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))?
                .parse()
                .map_err(|_| format!("{name} needs a number\n{USAGE}"))
        };
        match arg.as_str() {
            "--threads" => config.threads = num("--threads")?.max(1) as usize,
            "--cache-mb" => config.cache_bytes = num("--cache-mb")? << 20,
            "--max-insns" => config.max_insns = num("--max-insns")?,
            "--max-queue" => config.max_queue = num("--max-queue")?.max(1),
            "--cache-dir" => {
                let dir = args
                    .next()
                    .ok_or_else(|| format!("--cache-dir needs a path\n{USAGE}"))?;
                config.cache_dir = Some(PathBuf::from(dir));
            }
            "--metrics-dump" => dump = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(format!("unexpected option `{other}`\n{USAGE}"));
            }
            other => {
                if path.replace(PathBuf::from(other)).is_some() {
                    return Err(format!("more than one socket path\n{USAGE}"));
                }
            }
        }
    }
    let path = path.ok_or_else(|| USAGE.to_string())?;
    if dump {
        return metrics_dump(&path);
    }
    log::init(Level::Info);
    let server =
        Server::start(&path, config.clone()).map_err(|e| format!("{}: {e}", path.display()))?;
    eprintln!(
        "rtdc-serve: listening on {} ({} workers, {} MiB cache{})",
        path.display(),
        config.threads,
        config.cache_bytes >> 20,
        config
            .cache_dir
            .as_ref()
            .map_or(String::new(), |d| format!(", store {}", d.display())),
    );
    server.join();
    eprintln!("rtdc-serve: shut down");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rtdc-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
