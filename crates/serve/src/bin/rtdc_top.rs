//! `rtdc-top` — a live terminal dashboard for a running `rtdc-serve`.
//!
//! ```sh
//! rtdc-top <socket-path> [--interval-ms N] [--iters N] [--once]
//! ```
//!
//! Polls the daemon's `metrics` op and renders, per interval: requests
//! per second and p50/p90/p99 service time per op (computed from the
//! daemon-side histogram *deltas*, so each frame shows that interval,
//! not the lifetime), the cache hit rate and occupancy, and pool
//! saturation. Everything on screen comes from the one `metrics`
//! response — the dashboard holds no privileged view of the daemon.
//!
//! `--once` prints a single frame from the lifetime totals and exits
//! (useful in scripts); `--iters N` stops after N frames. Quantiles are
//! log2-bucket upper bounds: conservative within a factor of 2.
//!
//! A daemon restart between frames (visible as `started_at` changing or
//! uptime decreasing) resets the baseline instead of rendering
//! nonsense negative rates.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use rtdc_obs::HistogramSnapshot;
use rtdc_serve::client::{parse_histogram, Client};
use rtdc_serve::json::Json;

const USAGE: &str = "usage: rtdc-top <socket-path> [--interval-ms N] [--iters N] [--once]";

/// The ops rendered as table rows, in display order.
const OPS: [&str; 6] = ["build", "run", "trace", "plan", "stats", "metrics"];

/// One parsed `metrics` response.
struct Sample {
    taken: Instant,
    started_at: u64,
    uptime: u64,
    /// `serve.req.<op>` totals, [`OPS`] order.
    reqs: [u64; OPS.len()],
    /// `serve.op.<op>.us` histograms, [`OPS`] order.
    op_us: [HistogramSnapshot; OPS.len()],
    errors: u64,
    hits: u64,
    lookups: u64,
    entries: u64,
    resident_bytes: u64,
    budget_bytes: u64,
    threads: u64,
    in_flight: u64,
    queue_depth: u64,
}

fn counter(m: &Json, name: &str) -> u64 {
    m.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn gauge(m: &Json, name: &str) -> u64 {
    m.get("gauges")
        .and_then(|g| g.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn sample(client: &mut Client) -> Result<Sample, String> {
    let resp = client.metrics().map_err(|e| format!("metrics: {e}"))?;
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("daemon rejected the metrics op: {resp:?}"));
    }
    let m = resp
        .get("metrics")
        .ok_or("metrics response missing `metrics`")?;
    let mut reqs = [0u64; OPS.len()];
    let mut op_us: [HistogramSnapshot; OPS.len()] = Default::default();
    for (i, op) in OPS.iter().enumerate() {
        reqs[i] = counter(m, &format!("serve.req.{op}"));
        op_us[i] = m
            .get("histograms")
            .and_then(|h| h.get(&format!("serve.op.{op}.us")))
            .and_then(parse_histogram)
            .unwrap_or_default();
    }
    Ok(Sample {
        taken: Instant::now(),
        started_at: resp.get("started_at").and_then(Json::as_u64).unwrap_or(0),
        uptime: resp
            .get("uptime_seconds")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        reqs,
        op_us,
        errors: counter(m, "serve.err.total"),
        hits: gauge(m, "serve.cache.hits"),
        lookups: gauge(m, "serve.cache.lookups"),
        entries: gauge(m, "serve.cache.entries"),
        resident_bytes: gauge(m, "serve.cache.resident_bytes"),
        budget_bytes: gauge(m, "serve.cache.budget_bytes"),
        threads: gauge(m, "serve.pool.threads"),
        in_flight: gauge(m, "serve.pool.in_flight"),
        queue_depth: gauge(m, "serve.pool.queue_depth"),
    })
}

fn quantile_ms(h: &HistogramSnapshot, q: f64) -> String {
    match h.quantile(q) {
        Some(us) => format!("{:.2}", us as f64 / 1000.0),
        None => "-".to_string(),
    }
}

/// Renders one frame. `prev` bounds the interval; `None` renders the
/// lifetime totals (the `--once` view and the first live frame).
fn render(path: &Path, cur: &Sample, prev: Option<&Sample>) -> String {
    let dt = prev.map_or(0.0, |p| cur.taken.duration_since(p.taken).as_secs_f64());
    let window = if prev.is_some() {
        format!("last {dt:.1}s")
    } else {
        "lifetime".to_string()
    };
    let mut out = format!(
        "rtdc-top — {} — up {}s — {}\n\n{:<9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        path.display(),
        cur.uptime,
        window,
        "op",
        "rps",
        "p50 ms",
        "p90 ms",
        "p99 ms",
        "total",
    );
    for (i, op) in OPS.iter().enumerate() {
        let (n, h) = match prev {
            Some(p) => (
                cur.reqs[i].saturating_sub(p.reqs[i]),
                cur.op_us[i].since(&p.op_us[i]),
            ),
            None => (cur.reqs[i], cur.op_us[i].clone()),
        };
        let rps = if dt > 0.0 {
            format!("{:.1}", n as f64 / dt)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{:<9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            op,
            rps,
            quantile_ms(&h, 0.50),
            quantile_ms(&h, 0.90),
            quantile_ms(&h, 0.99),
            cur.reqs[i],
        ));
    }
    let hit_rate = if cur.lookups > 0 {
        format!("{:.1}%", 100.0 * cur.hits as f64 / cur.lookups as f64)
    } else {
        "-".to_string()
    };
    let saturation = if cur.threads > 0 {
        format!("{:.0}%", 100.0 * cur.in_flight as f64 / cur.threads as f64)
    } else {
        "-".to_string()
    };
    out.push_str(&format!(
        "\ncache  hit rate {hit_rate} ({}/{} lookups)  entries {}  resident {:.1}/{:.1} MiB\n",
        cur.hits,
        cur.lookups,
        cur.entries,
        cur.resident_bytes as f64 / f64::from(1u32 << 20),
        cur.budget_bytes as f64 / f64::from(1u32 << 20),
    ));
    out.push_str(&format!(
        "pool   threads {}  in-flight {}  queue depth {}  saturation {saturation}  errors {}\n",
        cur.threads, cur.in_flight, cur.queue_depth, cur.errors,
    ));
    out
}

fn run() -> Result<(), String> {
    let mut path: Option<PathBuf> = None;
    let mut interval = Duration::from_millis(1000);
    let mut iters: Option<u64> = None;
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))?
                .parse()
                .map_err(|_| format!("{name} needs a number\n{USAGE}"))
        };
        match arg.as_str() {
            "--interval-ms" => interval = Duration::from_millis(num("--interval-ms")?.max(10)),
            "--iters" => iters = Some(num("--iters")?),
            "--once" => once = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(format!("unexpected option `{other}`\n{USAGE}"));
            }
            other => {
                if path.replace(PathBuf::from(other)).is_some() {
                    return Err(format!("more than one socket path\n{USAGE}"));
                }
            }
        }
    }
    let path = path.ok_or_else(|| USAGE.to_string())?;
    let mut client =
        Client::connect(&path).map_err(|e| format!("{}: connect: {e}", path.display()))?;
    if once {
        let cur = sample(&mut client)?;
        print!("{}", render(&path, &cur, None));
        return Ok(());
    }
    let mut prev: Option<Sample> = None;
    let mut frame = 0u64;
    loop {
        let cur = sample(&mut client)?;
        // A restart makes the lifetime counters start over; comparing
        // against the old baseline would render nonsense rates.
        let restarted = prev
            .as_ref()
            .is_some_and(|p| cur.started_at != p.started_at || cur.uptime < p.uptime);
        let base = if restarted { None } else { prev.as_ref() };
        // ANSI clear + home: a plain-terminal live view, no TUI deps.
        print!("\x1b[2J\x1b[H{}", render(&path, &cur, base));
        use std::io::Write;
        let _ = std::io::stdout().flush();
        prev = Some(cur);
        frame += 1;
        if iters.is_some_and(|n| frame >= n) {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rtdc-top: {e}");
            ExitCode::FAILURE
        }
    }
}
