//! `servebench` — throughput and latency benchmark for `rtdc-serve`.
//!
//! ```sh
//! servebench [--clients N] [--reps N] [--out BENCH_serve.json] [--quick]
//! ```
//!
//! Starts an in-process daemon on a private socket and drives it with
//! `--clients` concurrent client threads through three phases:
//!
//! 1. **cold builds** — a zero-budget cache, so every `build` request
//!    lays the image out from scratch: the per-request-build baseline.
//! 2. **warm builds** — a real cache, pre-warmed, then the *same*
//!    request stream: every request is a verified cache hit. The
//!    headline metric is `build_speedup = warm_rps / cold_rps` — the
//!    build-once/serve-many economics the daemon exists for.
//! 3. **mixed runs** — `run` requests (cached builds + fresh
//!    simulations), recording requests/sec and p50/p99 latency.
//! 4. **restart recovery** — a disk-backed server is populated, torn
//!    down, and restarted on the same `--cache-dir`; `restart_hit_rate`
//!    is the warm hit rate of the replay (the persistence rung of the
//!    crash-safety story; gated at >= 0.8).
//! 5. **shed correctness** — a one-worker, queue-of-one server under
//!    `--clients`-way saturation; `shed_correctness` is the fraction of
//!    responses that are well-formed (`ok:true` or a typed
//!    `overloaded`), gated at 1.0: overload may slow clients down, but
//!    it must never hand them garbage.
//!
//! Latency is reported from **two vantage points**. The client-side
//! columns (`run_p50_ms`/`run_p99_ms`) time the full round trip —
//! socket, reader thread, pool queue wait, handler — as a client
//! experiences it. The daemon-side columns (`build_p99_ms`,
//! `run_p50_daemon_ms`/`run_p99_daemon_ms`) come from the daemon's own
//! `serve.op.<op>.us` histograms via the `metrics` op: pure handler
//! service time, no queue wait, quantiles as log2-bucket upper bounds
//! (conservative within 2x). The daemon-side numbers are what
//! `benchguard` gates with `[serve_max]` ceilings; the client-side
//! columns are kept for one release for cross-version comparison.
//!
//! Results land in `BENCH_serve.json` (schema: a flat `"serve"` array of
//! `{"metric": ..., "value": ...}` rows), which `benchguard` gates via
//! the `[serve_floors]` / `[serve_min]` / `[serve_max]` sections of
//! `benchguard.toml`. Wall-clock metrics are host-dependent; the gate
//! compares ratios against a checked-in baseline plus absolute bounds
//! (the ≥5x build speedup, loose latency ceilings), not raw numbers.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use rtdc_obs::HistogramSnapshot;
use rtdc_serve::client::{parse_histogram, request_line, Client};
use rtdc_serve::json::Json;
use rtdc_serve::server::{ServeConfig, Server};

/// The request workset: every tiny benchmark x every image family. Tiny
/// benchmarks are generated once per process (`generate_cached`), so the
/// cold phase measures image *layout* cost, not program generation.
const BENCHES: [&str; 3] = ["tiny-walker", "tiny-loop", "tiny-interp"];
const LABELS: [&str; 9] = [
    "native", "d", "d+rf", "cp", "cp+rf", "d2", "d2+rf", "lz", "lz+rf",
];

struct Args {
    clients: usize,
    reps: usize,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    const USAGE: &str = "usage: servebench [--clients N] [--reps N] [--out FILE] [--quick]";
    let mut parsed = Args {
        clients: 8,
        reps: 6,
        out: PathBuf::from("BENCH_serve.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--clients" => {
                parsed.clients = val("--clients")?
                    .parse()
                    .map_err(|_| format!("--clients needs a number\n{USAGE}"))?;
                parsed.clients = parsed.clients.max(1);
            }
            "--reps" => {
                parsed.reps = val("--reps")?
                    .parse()
                    .map_err(|_| format!("--reps needs a number\n{USAGE}"))?;
                parsed.reps = parsed.reps.max(1);
            }
            "--out" => parsed.out = PathBuf::from(val("--out")?),
            "--quick" => parsed.reps = 2,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    Ok(parsed)
}

/// Each client's request stream: `reps` passes over the full workset,
/// rotated per client so concurrent clients hit different keys at any
/// instant (maximum cache churn, no lockstep).
fn build_stream(client_id: usize, reps: usize) -> Vec<String> {
    let mut lines = Vec::new();
    for rep in 0..reps {
        for i in 0..BENCHES.len() {
            for j in 0..LABELS.len() {
                let rot = (i * LABELS.len() + j + client_id * 7 + rep * 3)
                    % (BENCHES.len() * LABELS.len());
                let b = BENCHES[rot / LABELS.len()];
                let l = LABELS[rot % LABELS.len()];
                lines.push(request_line("build", b, l, None));
            }
        }
    }
    lines
}

/// Drives `clients` threads, each sending its stream and collecting
/// per-request latencies. Returns (total requests, wall, latencies).
fn drive(
    socket: &std::path::Path,
    clients: usize,
    streams: &[Vec<String>],
) -> Result<(u64, Duration, Vec<Duration>), String> {
    let started = Instant::now();
    let results: Vec<Result<Vec<Duration>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|id| {
                let stream = &streams[id];
                scope.spawn(move || {
                    let mut c = Client::connect(socket).map_err(|e| e.to_string())?;
                    let mut lats = Vec::with_capacity(stream.len());
                    for line in stream {
                        let t = Instant::now();
                        let resp = c.request_raw(line).map_err(|e| e.to_string())?;
                        lats.push(t.elapsed());
                        if !resp.starts_with(r#"{"ok":true"#) {
                            return Err(format!("request `{line}` failed: {resp}"));
                        }
                    }
                    Ok(lats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let wall = started.elapsed();
    let mut all = Vec::new();
    for r in results {
        all.extend(r?);
    }
    Ok((all.len() as u64, wall, all))
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn cache_stats(socket: &std::path::Path) -> Result<(u64, u64, u64), String> {
    let mut c = Client::connect(socket).map_err(|e| e.to_string())?;
    let v = c.request(r#"{"op":"stats"}"#).map_err(|e| e.to_string())?;
    let cache = v.get("cache").ok_or("stats response missing `cache`")?;
    let f = |k: &str| {
        cache
            .get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("stats cache missing `{k}`"))
    };
    Ok((f("lookups")?, f("hits")?, f("misses")?))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let socket_dir = std::env::temp_dir();
    let threads = rtdc_bench::jobs::jobs_from_env();
    let streams: Vec<Vec<String>> = (0..args.clients)
        .map(|id| build_stream(id, args.reps))
        .collect();

    // Generation is memoized per process; do it before timing anything
    // so the cold phase measures layout, not program generation.
    eprintln!("servebench: generating worksets...");
    for bench in BENCHES {
        let spec = [
            rtdc_workloads::spec::tiny::walker(),
            rtdc_workloads::spec::tiny::loop_kernel(),
            rtdc_workloads::spec::tiny::interpreter(),
        ]
        .into_iter()
        .find(|s| s.name == bench)
        .expect("tiny spec");
        rtdc_workloads::generate_cached(&spec);
    }

    // Phase 1: cold — zero cache budget, every build is from scratch.
    eprintln!(
        "servebench: cold build phase ({} clients x {} requests)...",
        args.clients,
        streams[0].len()
    );
    let cold_socket = socket_dir.join(format!("rtdc-servebench-cold-{}.sock", std::process::id()));
    let cold_server = Server::start(
        &cold_socket,
        ServeConfig {
            threads,
            cache_bytes: 0,
            max_insns: 2_000_000_000,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("{}: {e}", cold_socket.display()))?;
    let (cold_reqs, cold_wall, _) = drive(&cold_socket, args.clients, &streams)?;
    drop(cold_server);
    let cold_rps = cold_reqs as f64 / cold_wall.as_secs_f64();

    // Phase 2: warm — real cache, pre-warmed, same stream.
    eprintln!("servebench: warm build phase...");
    let warm_socket = socket_dir.join(format!("rtdc-servebench-warm-{}.sock", std::process::id()));
    let warm_server = Server::start(
        &warm_socket,
        ServeConfig {
            threads,
            cache_bytes: 256 << 20,
            max_insns: 2_000_000_000,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("{}: {e}", warm_socket.display()))?;
    {
        let mut c = Client::connect(&warm_socket).map_err(|e| e.to_string())?;
        for bench in BENCHES {
            for label in LABELS {
                let resp = c
                    .request_raw(&request_line("build", bench, label, None))
                    .map_err(|e| e.to_string())?;
                if !resp.starts_with(r#"{"ok":true"#) {
                    return Err(format!("warmup build failed: {resp}"));
                }
            }
        }
    }
    let (warm_reqs, warm_wall, _) = drive(&warm_socket, args.clients, &streams)?;
    let (lookups, hits, _misses) = cache_stats(&warm_socket)?;
    let warm_rps = warm_reqs as f64 / warm_wall.as_secs_f64();
    let hit_rate = hits as f64 / lookups.max(1) as f64;
    let build_speedup = warm_rps / cold_rps.max(1e-9);

    // Phase 3: mixed runs on the warm server (cached builds + fresh
    // simulations) for latency percentiles.
    eprintln!("servebench: run phase...");
    let run_streams: Vec<Vec<String>> = (0..args.clients)
        .map(|id| {
            let mut lines = Vec::new();
            for rep in 0..args.reps.min(3) {
                for (j, label) in LABELS.iter().enumerate() {
                    let b = BENCHES[(id + rep + j) % BENCHES.len()];
                    lines.push(request_line("run", b, label, None));
                }
            }
            lines
        })
        .collect();
    let (run_reqs, run_wall, mut run_lats) = drive(&warm_socket, args.clients, &run_streams)?;
    // Daemon-side service-time histograms for the same workload,
    // fetched over the same protocol everyone else uses.
    let (build_us, run_us) = {
        let mut c = Client::connect(&warm_socket).map_err(|e| e.to_string())?;
        let resp = c.metrics().map_err(|e| e.to_string())?;
        let m = resp
            .get("metrics")
            .ok_or("metrics response missing `metrics`")?;
        let hist = |name: &str| -> Result<HistogramSnapshot, String> {
            m.get("histograms")
                .and_then(|h| h.get(name))
                .and_then(parse_histogram)
                .ok_or_else(|| format!("metrics missing histogram `{name}`"))
        };
        (hist("serve.op.build.us")?, hist("serve.op.run.us")?)
    };
    drop(warm_server);

    // Phase 4: restart recovery — populate a disk-backed server, tear
    // it down, restart on the same --cache-dir, replay. The metric is
    // the warm hit rate after restart: how much of the working set the
    // persistent store carried across the process boundary.
    eprintln!("servebench: restart recovery phase...");
    let store_dir = socket_dir.join(format!("rtdc-servebench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let restart_socket = socket_dir.join(format!(
        "rtdc-servebench-restart-{}.sock",
        std::process::id()
    ));
    let disk_config = ServeConfig {
        threads,
        cache_bytes: 256 << 20,
        max_insns: 2_000_000_000,
        cache_dir: Some(store_dir.clone()),
        ..ServeConfig::default()
    };
    let restart_hit_rate = {
        let populate = |socket: &std::path::Path| -> Result<(), String> {
            let mut c = Client::connect(socket).map_err(|e| e.to_string())?;
            for bench in BENCHES {
                for label in LABELS {
                    let resp = c
                        .request_raw(&request_line("build", bench, label, None))
                        .map_err(|e| e.to_string())?;
                    if !resp.starts_with(r#"{"ok":true"#) {
                        return Err(format!("restart-phase build failed: {resp}"));
                    }
                }
            }
            Ok(())
        };
        let gen1 = Server::start(&restart_socket, disk_config.clone())
            .map_err(|e| format!("{}: {e}", restart_socket.display()))?;
        populate(&restart_socket)?;
        drop(gen1); // process boundary stand-in: only the disk survives
        let gen2 = Server::start(&restart_socket, disk_config)
            .map_err(|e| format!("{}: {e}", restart_socket.display()))?;
        populate(&restart_socket)?;
        let (lookups, hits, _) = cache_stats(&restart_socket)?;
        drop(gen2);
        let _ = std::fs::remove_dir_all(&store_dir);
        hits as f64 / lookups.max(1) as f64
    };

    // Phase 5: shed correctness — a deliberately overloadable server
    // (one worker, no cache, queue of one). Every response under
    // saturation must be well-formed: `ok:true` or a typed
    // `overloaded`. The metric is that fraction; anything below 1.0
    // means a client saw a malformed line or an untyped failure.
    eprintln!("servebench: shed correctness phase...");
    let shed_socket = socket_dir.join(format!("rtdc-servebench-shed-{}.sock", std::process::id()));
    let shed_server = Server::start(
        &shed_socket,
        ServeConfig {
            threads: 1,
            cache_bytes: 0,
            max_insns: 2_000_000_000,
            max_queue: 1,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("{}: {e}", shed_socket.display()))?;
    let shed_correctness = {
        let per_client = 8usize;
        let counts: Vec<Result<(u64, u64), String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..args.clients)
                .map(|id| {
                    let socket = &shed_socket;
                    scope.spawn(move || {
                        let mut c = Client::connect(socket).map_err(|e| e.to_string())?;
                        let line = request_line(
                            "build",
                            BENCHES[id % BENCHES.len()],
                            LABELS[id % LABELS.len()],
                            None,
                        );
                        let (mut total, mut well_formed) = (0u64, 0u64);
                        for _ in 0..per_client {
                            let resp = c.request_raw(&line).map_err(|e| e.to_string())?;
                            total += 1;
                            let ok = resp.starts_with(r#"{"ok":true"#);
                            let shed = rtdc_serve::json::parse(&resp).is_ok_and(|v| {
                                v.get("error").and_then(Json::as_str) == Some("overloaded")
                            });
                            if ok || shed {
                                well_formed += 1;
                            }
                        }
                        Ok((total, well_formed))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
                .collect()
        });
        let (mut total, mut well_formed) = (0u64, 0u64);
        for r in counts {
            let (t, w) = r?;
            total += t;
            well_formed += w;
        }
        well_formed as f64 / total.max(1) as f64
    };
    drop(shed_server);

    run_lats.sort_unstable();
    let run_rps = run_reqs as f64 / run_wall.as_secs_f64();
    let p50 = percentile(&run_lats, 0.50);
    let p99 = percentile(&run_lats, 0.99);
    let q_ms = |h: &HistogramSnapshot, q: f64| h.quantile(q).unwrap_or(0) as f64 / 1e3;

    let rows = [
        ("cold_build_rps", cold_rps),
        ("warm_build_rps", warm_rps),
        ("build_speedup", build_speedup),
        ("hit_rate", hit_rate),
        ("run_rps", run_rps),
        ("run_p50_ms", p50.as_secs_f64() * 1e3),
        ("run_p99_ms", p99.as_secs_f64() * 1e3),
        ("build_p99_ms", q_ms(&build_us, 0.99)),
        ("run_p50_daemon_ms", q_ms(&run_us, 0.50)),
        ("run_p99_daemon_ms", q_ms(&run_us, 0.99)),
        ("restart_hit_rate", restart_hit_rate),
        ("shed_correctness", shed_correctness),
    ];
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"note\": \"rtdc-serve throughput; wall-clock dependent, gate on ratios + serve_min/serve_max. run_p50_ms/run_p99_ms are client-side round trips (include queue wait; kept one release for comparison); *_daemon_ms and build_p99_ms are daemon-side handler service time from log2 histograms (bucket upper bounds, within 2x)\",\n",
    );
    out.push_str(&format!("  \"clients\": {},\n", args.clients));
    out.push_str(&format!("  \"server_threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"build_requests\": {},\n  \"run_requests\": {},\n",
        cold_reqs + warm_reqs,
        run_reqs
    ));
    out.push_str("  \"serve\": [\n");
    for (i, (metric, value)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"metric\": \"{metric}\", \"value\": {value:.4}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&args.out, &out).map_err(|e| format!("{}: {e}", args.out.display()))?;

    println!(
        "servebench: {} clients, {threads} server threads",
        args.clients
    );
    for (metric, value) in rows {
        println!("  {metric:<16} {value:>12.2}");
    }
    println!("wrote {}", args.out.display());
    if build_speedup < 5.0 {
        eprintln!(
            "servebench: WARNING: build_speedup {build_speedup:.2} below the 5x acceptance floor"
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("servebench: {e}");
            ExitCode::FAILURE
        }
    }
}
