//! `chaosweep` — fault injection against a *real* `rtdc-serve` daemon.
//!
//! ```sh
//! chaosweep [--quick] [--seed N]
//! ```
//!
//! The `faultsweep` pattern promoted to the service layer: each fault
//! family scripts a concrete failure — `SIGKILL` mid-spill, corrupted
//! store files, worker panics, a slow-loris client, queue saturation —
//! against a daemon (subprocess families locate the sibling
//! `rtdc-serve` binary; in-process families drive the library server),
//! then classifies what the service did about it:
//!
//! | outcome     | meaning                                                |
//! |-------------|--------------------------------------------------------|
//! | `recovered` | full service restored, every response well-formed      |
//! | `shed`      | load was refused with typed `overloaded` errors only   |
//! | `degraded`  | correct but diminished (e.g. cold cache after restart) |
//! | `wedged`    | an operation failed to complete within the watchdog    |
//! | `silent`    | a failure produced no typed signal (the worst outcome) |
//!
//! Exit status is non-zero iff any family is `wedged` or `silent` —
//! `degraded` and `shed` are legitimate answers to induced faults,
//! hangs and lies are not.

use std::io::Write as IoWrite;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rtdc_rng::Rng64;
use rtdc_serve::client::{connect_with_retry, request_line, Client, RetryPolicy};
use rtdc_serve::json::{self, Json};
use rtdc_serve::pool::WorkerPool;
use rtdc_serve::server::{ServeConfig, Server};

const USAGE: &str = "usage: chaosweep [--quick] [--seed N]";

/// How a fault family resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Recovered,
    Shed,
    Degraded,
    Wedged,
    Silent,
}

impl Outcome {
    fn label(self) -> &'static str {
        match self {
            Outcome::Recovered => "recovered",
            Outcome::Shed => "shed",
            Outcome::Degraded => "degraded",
            Outcome::Wedged => "wedged",
            Outcome::Silent => "silent",
        }
    }

    fn is_failure(self) -> bool {
        matches!(self, Outcome::Wedged | Outcome::Silent)
    }
}

/// What one family reports back to the sweep.
struct Report {
    name: &'static str,
    outcome: Outcome,
    detail: String,
}

/// Subprocess daemons registered for cleanup if a family wedges (the
/// family thread is abandoned, so its `Child` handles never drop).
type PidRegistry = Arc<Mutex<Vec<u32>>>;

struct Ctx {
    quick: bool,
    seed: u64,
    pids: PidRegistry,
}

/// The workload every daemon family drives: all three tiny benches
/// across three compressed labels (nine distinct cache keys).
fn workload() -> Vec<String> {
    let mut lines = Vec::new();
    for bench in ["tiny-walker", "tiny-loop", "tiny-interp"] {
        for scheme in ["d", "cp", "d+rf"] {
            lines.push(request_line("build", bench, scheme, None));
        }
    }
    lines
}

fn serve_binary() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("current_exe has no parent")?;
    let bin = dir.join("rtdc-serve");
    if !bin.exists() {
        return Err(format!(
            "{} not found (build rtdc-serve first)",
            bin.display()
        ));
    }
    Ok(bin)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("rtdc-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

fn spawn_daemon(ctx: &Ctx, sock: &Path, cache_dir: Option<&Path>) -> Result<Child, String> {
    let bin = serve_binary()?;
    let mut cmd = Command::new(bin);
    cmd.arg(sock).args(["--threads", "2"]);
    if let Some(dir) = cache_dir {
        cmd.arg("--cache-dir").arg(dir);
    }
    let child = cmd
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn rtdc-serve: {e}"))?;
    ctx.pids.lock().unwrap().push(child.id());
    Ok(child)
}

fn connect(sock: &Path, rng: &mut Rng64) -> Result<Client, String> {
    let policy = RetryPolicy {
        attempts: 40,
        base_delay_ms: 10,
        max_delay_ms: 200,
    };
    connect_with_retry(sock, &policy, rng).map_err(|e| format!("connect {}: {e}", sock.display()))
}

/// One `stats` round trip, returning the parsed response object.
fn stats(c: &mut Client) -> Result<Json, String> {
    c.request(r#"{"op":"stats"}"#)
        .map_err(|e| format!("stats: {e}"))
}

fn field(v: &Json, obj: &str, name: &str) -> u64 {
    v.get(obj)
        .and_then(|o| o.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Drives `lines` and fails on any response that is not `ok:true`.
/// Returns the number of malformed (non-JSON / untyped) responses —
/// those are `silent` failures at the protocol layer.
fn drive_ok(c: &mut Client, lines: &[String]) -> Result<u64, String> {
    let mut malformed = 0;
    for line in lines {
        let resp = c.request_raw(line).map_err(|e| format!("request: {e}"))?;
        match json::parse(&resp) {
            Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => {}
            Ok(v) if v.get("error").and_then(Json::as_str).is_some() => {
                return Err(format!("typed error for `{line}`: {resp}"));
            }
            _ => malformed += 1,
        }
    }
    Ok(malformed)
}

/// Family 1: `SIGKILL` a daemon while its spill stream is in flight,
/// restart on the same `--cache-dir`, and demand the store recovers
/// every entry that survived — without a single bad response.
fn family_kill_mid_spill(ctx: &Ctx) -> Result<(Outcome, String), String> {
    let dir = scratch_dir("kill");
    let sock = dir.join("serve.sock");
    let cache = dir.join("store");
    let mut rng = Rng64::seed_from_u64(ctx.seed ^ 0x4B49_4C4C);
    let lines = workload();

    let mut child = spawn_daemon(ctx, &sock, Some(&cache))?;
    let mut c = connect(&sock, &mut rng)?;
    // Complete part of the workload (those keys are durably spilled),
    // then pipeline the rest and kill the daemon mid-stream.
    let split = lines.len() / 2;
    drive_ok(&mut c, &lines[..split])?;
    {
        let mut raw = UnixStream::connect(&sock).map_err(|e| format!("connect: {e}"))?;
        for line in &lines[split..] {
            let _ = raw.write_all(line.as_bytes());
            let _ = raw.write_all(b"\n");
        }
        let _ = raw.flush();
        std::thread::sleep(Duration::from_millis(rng.gen_range(5u64..40)));
    }
    child.kill().map_err(|e| format!("kill: {e}"))?;
    let _ = child.wait();

    // Restart on the same store. The scan must absorb any torn state
    // (tmp orphans, half-spilled files) without crashing.
    let mut child = spawn_daemon(ctx, &sock, Some(&cache))?;
    let mut c = connect(&sock, &mut rng)?;
    let s0 = stats(&mut c)?;
    let entries = field(&s0, "store", "entries");
    let malformed = drive_ok(&mut c, &lines)?;
    let s1 = stats(&mut c)?;
    let store_hits = field(&s1, "cache", "store_hits");
    let load_failures = field(&s1, "store", "load_failures");
    let _ = c.shutdown();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);

    let detail = format!(
        "entries={entries} store_hits={store_hits} load_failures={load_failures} \
         tmp_cleaned={} quarantined={}",
        field(&s0, "store", "tmp_cleaned"),
        field(&s0, "store", "quarantined"),
    );
    if malformed > 0 {
        return Ok((
            Outcome::Silent,
            format!("{malformed} malformed responses; {detail}"),
        ));
    }
    // Every surviving entry must come back as a store hit; a clean
    // replay that had to rebuild surviving entries is degraded.
    if store_hits + load_failures < entries {
        return Ok((Outcome::Degraded, detail));
    }
    Ok((Outcome::Recovered, detail))
}

/// Family 2: corrupt store files on disk (bit flips, truncation,
/// garbage headers) between daemon generations. The scan must
/// quarantine every mutant and the replay must rebuild cleanly.
fn family_store_corruption(ctx: &Ctx) -> Result<(Outcome, String), String> {
    let dir = scratch_dir("corrupt");
    let sock = dir.join("serve.sock");
    let cache = dir.join("store");
    let mut rng = Rng64::seed_from_u64(ctx.seed ^ 0xC0_44F7);
    let lines = workload();

    let mut child = spawn_daemon(ctx, &sock, Some(&cache))?;
    let mut c = connect(&sock, &mut rng)?;
    drive_ok(&mut c, &lines)?;
    c.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    let _ = child.wait();

    // Mutate a sample of the store between generations.
    let mut files: Vec<PathBuf> = std::fs::read_dir(&cache)
        .map_err(|e| format!("read store dir: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "img"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err("daemon spilled nothing".into());
    }
    let victims = files.len().min(3);
    for (i, path) in files.iter().take(victims).enumerate() {
        let mut bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        match i % 3 {
            0 => {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1 << rng.gen_range(0u32..8);
            }
            1 => bytes.truncate(rng.gen_range(0..bytes.len())),
            _ => {
                let head = 12.min(bytes.len());
                bytes[..head].fill(0xFF);
            }
        }
        std::fs::write(path, &bytes).map_err(|e| format!("write {}: {e}", path.display()))?;
    }

    let mut child = spawn_daemon(ctx, &sock, Some(&cache))?;
    let mut c = connect(&sock, &mut rng)?;
    let s0 = stats(&mut c)?;
    let quarantined = field(&s0, "store", "quarantined");
    let malformed = drive_ok(&mut c, &lines)?;
    let s1 = stats(&mut c)?;
    let load_failures = field(&s1, "store", "load_failures");
    let _ = c.shutdown();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);

    let detail =
        format!("mutated={victims} quarantined={quarantined} load_failures={load_failures}");
    if malformed > 0 {
        return Ok((
            Outcome::Silent,
            format!("{malformed} malformed responses; {detail}"),
        ));
    }
    // Every mutant must be caught somewhere typed: at scan or on load.
    if quarantined + load_failures < victims as u64 {
        return Ok((
            Outcome::Silent,
            format!("mutants served without a signal? {detail}"),
        ));
    }
    Ok((Outcome::Recovered, detail))
}

/// Family 3: jobs that panic on the worker pool. The pool must count
/// them and keep serving.
fn family_worker_panics(ctx: &Ctx) -> Result<(Outcome, String), String> {
    let panics: u64 = if ctx.quick { 8 } else { 64 };
    let pool = WorkerPool::new(2);
    for _ in 0..panics {
        pool.execute(Box::new(|| panic!("chaos: induced worker panic")));
    }
    let (tx, rx) = mpsc::channel::<u64>();
    for i in 0..4u64 {
        let tx = tx.clone();
        pool.execute(Box::new(move || {
            let _ = tx.send(i);
        }));
    }
    drop(tx);
    let mut got = 0u64;
    while rx.recv_timeout(Duration::from_secs(10)).is_ok() {
        got += 1;
    }
    // A worker may still be unwinding its last induced panic when the
    // survivors land on the other worker — give the counter a moment.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while pool.panics() < panics && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let detail = format!("panics={} survivors={got}/4", pool.panics());
    if got < 4 {
        return Ok((Outcome::Degraded, detail));
    }
    if pool.panics() != panics {
        return Ok((Outcome::Silent, format!("panics uncounted: {detail}")));
    }
    Ok((Outcome::Recovered, detail))
}

/// Family 4: a slow-loris client pipelines requests and never drains
/// its responses. The write-stall bound must shed the connection while
/// a healthy client keeps getting answers and shutdown stays prompt.
fn family_slow_loris(ctx: &Ctx) -> Result<(Outcome, String), String> {
    let dir = scratch_dir("loris");
    let sock = dir.join("serve.sock");
    let mut rng = Rng64::seed_from_u64(ctx.seed ^ 0x1015);
    let server = Server::start(
        &sock,
        ServeConfig {
            threads: 2,
            write_stall_ms: 300,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("start: {e}"))?;

    // The loris: flood requests, read nothing. Responses accumulate in
    // the socket buffer until the daemon's writes stall past budget and
    // it drops the connection — errors here are expected and ignored.
    let mut loris = UnixStream::connect(&sock).map_err(|e| format!("connect: {e}"))?;
    let floods: usize = if ctx.quick { 20_000 } else { 60_000 };
    let _ = loris.set_write_timeout(Some(Duration::from_millis(100)));
    let mut accepted = 0usize;
    for _ in 0..floods {
        match loris.write_all(b"{\"op\":\"metrics\",\"format\":\"text\"}\n") {
            Ok(()) => accepted += 1,
            Err(_) => break,
        }
    }

    // A healthy client on its own connection must be unaffected.
    let mut c = connect(&sock, &mut rng)?;
    let healthy = drive_ok(&mut c, &workload()[..3])? == 0;
    let _ = c.shutdown();
    drop(loris);
    server.join(); // the watchdog turns a hang here into `wedged`
    let _ = std::fs::remove_dir_all(&dir);

    let detail = format!("flooded={accepted} healthy_served={healthy}");
    if !healthy {
        return Ok((Outcome::Degraded, detail));
    }
    Ok((Outcome::Recovered, detail))
}

/// Family 5: more concurrent work than `max_queue` permits. Every
/// response must be well-formed — `ok:true` or a typed `overloaded` —
/// and a client retrying with backoff must eventually get through.
fn family_queue_saturation(ctx: &Ctx) -> Result<(Outcome, String), String> {
    let dir = scratch_dir("saturate");
    let sock = dir.join("serve.sock");
    let server = Server::start(
        &sock,
        ServeConfig {
            threads: 1,
            cache_bytes: 0, // every request rebuilds: maximal pressure
            max_queue: 1,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("start: {e}"))?;

    let clients: usize = 6;
    let per_client: usize = if ctx.quick { 4 } else { 10 };
    let results: Vec<(u64, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let sock = sock.clone();
                s.spawn(move || -> Result<(u64, u64, u64), String> {
                    let mut rng = Rng64::seed_from_u64(0x5A7 + i as u64);
                    let mut c = connect(&sock, &mut rng)?;
                    let line = request_line("build", "tiny-interp", "cp", None);
                    let (mut ok, mut shed, mut malformed) = (0u64, 0u64, 0u64);
                    for _ in 0..per_client {
                        let resp = c.request_raw(&line).map_err(|e| format!("req: {e}"))?;
                        match json::parse(&resp) {
                            Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => ok += 1,
                            Ok(v)
                                if v.get("error").and_then(Json::as_str) == Some("overloaded") =>
                            {
                                shed += 1;
                            }
                            _ => malformed += 1,
                        }
                    }
                    // The resilient path: bounded retries must land it.
                    let policy = RetryPolicy {
                        attempts: 10,
                        base_delay_ms: 5,
                        max_delay_ms: 100,
                    };
                    let resp = c
                        .request_retrying(&line, &policy, &mut rng)
                        .map_err(|e| format!("retry: {e}"))?;
                    match json::parse(&resp) {
                        Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => ok += 1,
                        Ok(v) if v.get("error").is_some() => shed += 1,
                        _ => malformed += 1,
                    }
                    Ok((ok, shed, malformed))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread").unwrap_or((0, 0, u64::MAX)))
            .collect()
    });

    let mut c = Client::connect(&sock).map_err(|e| format!("connect: {e}"))?;
    let s = stats(&mut c)?;
    let shed_total = field(&s, "requests", "errors");
    let _ = c.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    let ok: u64 = results.iter().map(|r| r.0).sum();
    let shed: u64 = results.iter().map(|r| r.1).sum();
    let malformed: u64 = results.iter().map(|r| r.2).sum();
    let detail = format!("ok={ok} shed={shed} malformed={malformed} err_total={shed_total}");
    if malformed > 0 {
        return Ok((Outcome::Silent, detail));
    }
    if ok == 0 {
        return Ok((Outcome::Degraded, format!("nothing got through: {detail}")));
    }
    if shed > 0 {
        return Ok((Outcome::Shed, detail));
    }
    Ok((Outcome::Recovered, detail))
}

/// Runs one family under a watchdog: a family that does not report
/// within the timeout is `wedged` (its thread is abandoned; any
/// subprocess daemons it registered are killed at exit).
fn run_family(
    name: &'static str,
    timeout: Duration,
    f: impl FnOnce() -> Result<(Outcome, String), String> + Send + 'static,
) -> Report {
    let (tx, rx) = mpsc::channel();
    std::thread::Builder::new()
        .name(format!("chaos-{name}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn family");
    match rx.recv_timeout(timeout) {
        Ok(Ok((outcome, detail))) => Report {
            name,
            outcome,
            detail,
        },
        Ok(Err(detail)) => Report {
            name,
            outcome: Outcome::Wedged,
            detail,
        },
        Err(_) => Report {
            name,
            outcome: Outcome::Wedged,
            detail: format!("no report within {timeout:?}"),
        },
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut seed = 0xC4A0_5EEDu64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = match args.next().and_then(|v| v.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed needs a number\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let timeout = Duration::from_secs(if quick { 90 } else { 240 });
    let pids: PidRegistry = Arc::new(Mutex::new(Vec::new()));
    let ctx = |p: &PidRegistry| Ctx {
        quick,
        seed,
        pids: Arc::clone(p),
    };

    // Induced panics are the *point* of the worker-panic family; keep
    // their backtraces out of the report. Everything else still prints.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let induced = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos: induced"));
        if !induced {
            default_hook(info);
        }
    }));

    println!("chaosweep: seed={seed:#x} quick={quick}");
    type Family = (
        &'static str,
        Box<dyn FnOnce() -> Result<(Outcome, String), String> + Send>,
    );
    let families: Vec<Family> = {
        let (c1, c2, c3, c4, c5) = (ctx(&pids), ctx(&pids), ctx(&pids), ctx(&pids), ctx(&pids));
        vec![
            (
                "kill-mid-spill",
                Box::new(move || family_kill_mid_spill(&c1)),
            ),
            (
                "store-corruption",
                Box::new(move || family_store_corruption(&c2)),
            ),
            ("worker-panics", Box::new(move || family_worker_panics(&c3))),
            ("slow-loris", Box::new(move || family_slow_loris(&c4))),
            (
                "queue-saturation",
                Box::new(move || family_queue_saturation(&c5)),
            ),
        ]
    };

    let mut failed = false;
    for (name, f) in families {
        let report = run_family(name, timeout, f);
        println!(
            "  {:<18} {:<10} {}",
            report.name,
            report.outcome.label(),
            report.detail
        );
        failed |= report.outcome.is_failure();
    }

    if failed {
        // Abandoned family threads may have left daemons running.
        for pid in pids.lock().unwrap().iter() {
            let _ = Command::new("kill")
                .args(["-9", &pid.to_string()])
                .stderr(Stdio::null())
                .status();
        }
        eprintln!("chaosweep: FAILED (wedged or silent outcomes above)");
        return ExitCode::FAILURE;
    }
    println!("chaosweep: all families recovered, shed, or degraded gracefully");
    ExitCode::SUCCESS
}
