//! The persistent image store: sealed [`MemoryImage`]s spilled to disk,
//! keyed by the same `(bench, label, plan_digest)` content addresses as
//! the in-memory cache, so a daemon restart recovers its hit rate
//! instead of rebuilding the world.
//!
//! **File format** (version 1): an envelope around the
//! [`rtdc::imagefile`] payload —
//!
//! ```text
//! 8  bytes  magic  "RTDCIMG1"
//! 4  bytes  version (LE u32, currently 1)
//! 4+ bytes  bench  (LE u32 length + UTF-8)
//! 4+ bytes  label  (LE u32 length + UTF-8)
//! 4  bytes  plan_digest (LE u32)
//! 4+ bytes  payload (LE u32 length + encode_image bytes)
//! 4  bytes  CRC32 of every byte above
//! ```
//!
//! The embedded key makes every file self-describing (a mis-named file
//! cannot serve the wrong image), and the whole-file CRC sits *on top
//! of* the per-segment seals inside the payload: the CRC catches torn
//! or bit-rotted files cheaply at scan time, and
//! [`MemoryImage::verify_integrity`] re-proves the segments on every
//! load before an image is served.
//!
//! **Atomic writes**: spills go to a `tmp-`-prefixed sibling, are
//! fsynced, then renamed over the final name, then the directory is
//! fsynced — so a crash at any instant leaves either the old file, the
//! new file, or a `tmp-` orphan, never a half-written final file. The
//! startup scan deletes orphans and quarantines (never deletes, never
//! crashes on) any file failing envelope validation, moving it into a
//! `quarantine/` subdirectory for post-mortem.
//!
//! [`MemoryImage::verify_integrity`]: rtdc::image::MemoryImage::verify_integrity

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use rtdc::image::MemoryImage;
use rtdc::imagefile::{decode_image, encode_image, ImageFileError};
use rtdc::integrity::crc32;

use crate::cache::CacheKey;

/// The 8-byte magic every store file starts with.
pub const STORE_MAGIC: [u8; 8] = *b"RTDCIMG1";

/// The current store-file format version. A file with any other version
/// is quarantined at scan time (stale-version files are not migrated in
/// place; the daemon rebuilds those images on demand).
pub const STORE_VERSION: u32 = 1;

/// Name of the quarantine subdirectory.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Why a store file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O error reading or writing the store.
    Io {
        /// The failing operation and OS detail.
        detail: String,
    },
    /// The file does not start with [`STORE_MAGIC`].
    BadMagic,
    /// The file's version is not [`STORE_VERSION`].
    BadVersion {
        /// The version found.
        found: u32,
    },
    /// The file ended before the envelope could be read in full.
    Truncated,
    /// The whole-file CRC32 did not match.
    ChecksumMismatch {
        /// CRC recorded in the trailer.
        expected: u32,
        /// CRC of the bytes actually present.
        actual: u32,
    },
    /// The envelope was sound but the payload failed to decode.
    BadImage {
        /// The decoder's diagnostic.
        detail: String,
    },
    /// The payload decoded but failed [`MemoryImage::verify_integrity`]
    /// against its own seals.
    ///
    /// [`MemoryImage::verify_integrity`]: rtdc::image::MemoryImage::verify_integrity
    Poisoned {
        /// The integrity error.
        detail: String,
    },
    /// The file's embedded key is not the key it was looked up under
    /// (a file-name collision; the file is left alone).
    KeyMismatch {
        /// The key embedded in the file.
        found: CacheKey,
    },
}

impl StoreError {
    /// A stable short kind for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            StoreError::Io { .. } => "io",
            StoreError::BadMagic => "bad-magic",
            StoreError::BadVersion { .. } => "bad-version",
            StoreError::Truncated => "truncated",
            StoreError::ChecksumMismatch { .. } => "checksum-mismatch",
            StoreError::BadImage { .. } => "bad-image",
            StoreError::Poisoned { .. } => "poisoned",
            StoreError::KeyMismatch { .. } => "key-mismatch",
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { detail } => write!(f, "io: {detail}"),
            StoreError::BadMagic => write!(f, "bad magic"),
            StoreError::BadVersion { found } => {
                write!(f, "version {found} (expected {STORE_VERSION})")
            }
            StoreError::Truncated => write!(f, "truncated envelope"),
            StoreError::ChecksumMismatch { expected, actual } => {
                write!(f, "file crc {actual:08x} != recorded {expected:08x}")
            }
            StoreError::BadImage { detail } => write!(f, "bad payload: {detail}"),
            StoreError::Poisoned { detail } => write!(f, "integrity failure: {detail}"),
            StoreError::KeyMismatch { found } => write!(f, "file belongs to key {found}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A snapshot of the store counters (the `stats` op's `store` object
/// and the `serve.store.*` gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Valid entries resident on disk right now.
    pub entries: u64,
    /// Files examined by the startup scan.
    pub scanned: u64,
    /// Files moved to `quarantine/` (at scan or on a failed load).
    pub quarantined: u64,
    /// Orphaned `tmp-` files deleted by the startup scan.
    pub tmp_cleaned: u64,
    /// Images served from disk (decoded + integrity-verified).
    pub loads: u64,
    /// Loads that found a file but rejected it.
    pub load_failures: u64,
    /// Images spilled to disk.
    pub spills: u64,
    /// Spills that failed (I/O errors; the build is still served).
    pub spill_failures: u64,
}

/// The on-disk image store. All operations are concurrency-safe: spills
/// are atomic renames, loads read whole files, and the counters are
/// atomics.
pub struct DiskStore {
    dir: PathBuf,
    entries: AtomicU64,
    scanned: AtomicU64,
    quarantined: AtomicU64,
    tmp_cleaned: AtomicU64,
    loads: AtomicU64,
    load_failures: AtomicU64,
    spills: AtomicU64,
    spill_failures: AtomicU64,
    /// Distinguishes concurrent spillers' temp files.
    spill_seq: AtomicU64,
}

/// Serializes `key` + `image` into the store file format (envelope +
/// payload + CRC trailer).
pub fn encode_store_file(key: &CacheKey, image: &MemoryImage) -> Vec<u8> {
    let payload = encode_image(image);
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(&STORE_MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    for s in [&key.bench, &key.label] {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    out.extend_from_slice(&key.plan_digest.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates a store file's envelope — magic, version, field lengths,
/// whole-file CRC — and returns the embedded key and the payload bytes.
/// Does **not** decode the payload; see [`decode_store_file`].
///
/// # Errors
///
/// A typed [`StoreError`] for any deviation; never panics on any input.
pub fn check_envelope(bytes: &[u8]) -> Result<(CacheKey, &[u8]), StoreError> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Result<&[u8], StoreError> {
        // The trailer is excluded from readable range only implicitly;
        // envelope reads are bounds-checked against the full input.
        if bytes.len() - *at < n {
            return Err(StoreError::Truncated);
        }
        let s = &bytes[*at..*at + n];
        *at += n;
        Ok(s)
    };
    let u32_at = |at: &mut usize| -> Result<u32, StoreError> {
        let s = take(at, 4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    };
    if take(&mut at, 8)? != STORE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32_at(&mut at)?;
    if version != STORE_VERSION {
        return Err(StoreError::BadVersion { found: version });
    }
    // CRC next: it covers everything up to the 4-byte trailer, and
    // checking it before parsing lengths means a flipped length byte is
    // caught here, not by an allocation guard downstream.
    if bytes.len() < at + 4 {
        return Err(StoreError::Truncated);
    }
    let body = &bytes[..bytes.len() - 4];
    let trailer = &bytes[bytes.len() - 4..];
    let expected = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let actual = crc32(body);
    if actual != expected {
        return Err(StoreError::ChecksumMismatch { expected, actual });
    }
    let str_at = |at: &mut usize| -> Result<String, StoreError> {
        let n = u32_at(at)? as usize;
        let s = take(at, n)?;
        String::from_utf8(s.to_vec()).map_err(|_| StoreError::BadImage {
            detail: "key field is not utf-8".into(),
        })
    };
    let bench = str_at(&mut at)?;
    let label = str_at(&mut at)?;
    let plan_digest = u32_at(&mut at)?;
    let payload_len = u32_at(&mut at)? as usize;
    let payload = take(&mut at, payload_len)?;
    if at != body.len() {
        return Err(StoreError::BadImage {
            detail: format!("{} trailing envelope bytes", body.len() - at),
        });
    }
    Ok((
        CacheKey {
            bench,
            label,
            plan_digest,
        },
        payload,
    ))
}

/// Fully decodes a store file: envelope + payload + integrity seals.
/// The returned image has passed `verify_integrity`.
///
/// # Errors
///
/// A typed [`StoreError`] for any deviation; never panics on any input.
pub fn decode_store_file(bytes: &[u8]) -> Result<(CacheKey, MemoryImage), StoreError> {
    let (key, payload) = check_envelope(bytes)?;
    let image = decode_image(payload).map_err(|e: ImageFileError| StoreError::BadImage {
        detail: e.to_string(),
    })?;
    image.verify_integrity().map_err(|e| StoreError::Poisoned {
        detail: e.to_string(),
    })?;
    Ok((key, image))
}

/// Maps arbitrary key text into a filesystem-safe token.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The store file name for `key`: human-greppable sanitized parts plus
/// a CRC of the exact key, so two keys that sanitize identically still
/// get distinct files (and the embedded-key check catches the
/// astronomically unlikely full collision).
pub fn file_name(key: &CacheKey) -> String {
    let exact = format!(
        "{}\u{0}{}\u{0}{:08x}",
        key.bench, key.label, key.plan_digest
    );
    format!(
        "{}__{}__{:08x}-{:08x}.img",
        sanitize(&key.bench),
        sanitize(&key.label),
        key.plan_digest,
        crc32(exact.as_bytes()),
    )
}

fn io_err(op: &str, path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        detail: format!("{op} {}: {e}", path.display()),
    }
}

impl DiskStore {
    /// Opens (creating if absent) the store at `dir` and runs the
    /// startup scan: orphaned `tmp-` files are deleted, every `.img`
    /// file is envelope-validated, and invalid files are moved into
    /// `quarantine/`. The scan never fails on a bad *file* — only on
    /// I/O errors touching the directory itself.
    ///
    /// # Errors
    ///
    /// I/O errors creating or reading the directory.
    pub fn open(dir: &Path) -> std::io::Result<DiskStore> {
        fs::create_dir_all(dir)?;
        fs::create_dir_all(dir.join(QUARANTINE_DIR))?;
        let store = DiskStore {
            dir: dir.to_path_buf(),
            entries: AtomicU64::new(0),
            scanned: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            tmp_cleaned: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            load_failures: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            spill_failures: AtomicU64::new(0),
            spill_seq: AtomicU64::new(0),
        };
        for entry in fs::read_dir(dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("tmp-") {
                // A crash mid-spill left this orphan; the final file
                // either exists (rename happened) or the image was
                // never durably stored. Either way the orphan is dead.
                if fs::remove_file(&path).is_ok() {
                    store.tmp_cleaned.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
            if !name.ends_with(".img") {
                continue;
            }
            store.scanned.fetch_add(1, Ordering::Relaxed);
            let verdict = match fs::read(&path) {
                Err(e) => Err(io_err("read", &path, &e)),
                Ok(bytes) => check_envelope(&bytes).map(|_| ()),
            };
            match verdict {
                Ok(()) => {
                    store.entries.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => store.quarantine(&path, &e),
            }
        }
        Ok(store)
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Moves `path` into `quarantine/`, counting it. Never panics; a
    /// rename failure falls back to deletion so a corrupt file cannot
    /// be re-served either way.
    fn quarantine(&self, path: &Path, why: &StoreError) {
        let name = path
            .file_name()
            .map_or_else(|| "unnamed".into(), |n| n.to_string_lossy().into_owned());
        let dest = self.dir.join(QUARANTINE_DIR).join(format!(
            "{name}.{}",
            self.quarantined.load(Ordering::Relaxed)
        ));
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        rtdc_obs::log::event(rtdc_obs::log::Level::Warn, "store_quarantine")
            .str("file", &name)
            .str("kind", why.kind())
            .str("detail", &why.to_string())
            .emit();
    }

    /// Loads `key` from disk. `Ok(None)` means no file exists for the
    /// key. The returned image has passed envelope validation, payload
    /// decode, *and* [`MemoryImage::verify_integrity`] — a file failing
    /// any of those is quarantined and reported as the error, so a
    /// poisoned spill can be served at most zero times.
    ///
    /// [`MemoryImage::verify_integrity`]: rtdc::image::MemoryImage::verify_integrity
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`]; callers treat any error as a miss and
    /// rebuild.
    pub fn load(&self, key: &CacheKey) -> Result<Option<MemoryImage>, StoreError> {
        let path = self.dir.join(file_name(key));
        let bytes = match fs::read(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                self.load_failures.fetch_add(1, Ordering::Relaxed);
                return Err(io_err("read", &path, &e));
            }
            Ok(b) => b,
        };
        match decode_store_file(&bytes) {
            Ok((found, image)) => {
                if &found != key {
                    // Not this key's file (a sanitized-name collision):
                    // leave it for its rightful owner.
                    self.load_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(StoreError::KeyMismatch { found });
                }
                self.loads.fetch_add(1, Ordering::Relaxed);
                Ok(Some(image))
            }
            Err(e) => {
                self.load_failures.fetch_add(1, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                self.quarantine(&path, &e);
                Err(e)
            }
        }
    }

    /// Spills `image` under `key` atomically: temp file + fsync +
    /// rename + directory fsync. A file already present for the key is
    /// left untouched (same key means same content; a stale bad file is
    /// caught — and quarantined — by the next load, after which the
    /// rebuild respills).
    ///
    /// # Errors
    ///
    /// I/O errors; the spill is counted as failed and the caller's
    /// build is served regardless.
    pub fn spill(&self, key: &CacheKey, image: &MemoryImage) -> Result<(), StoreError> {
        let final_path = self.dir.join(file_name(key));
        if final_path.exists() {
            return Ok(());
        }
        let result = self.spill_inner(&final_path, key, image);
        match &result {
            Ok(()) => {
                self.spills.fetch_add(1, Ordering::Relaxed);
                self.entries.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.spill_failures.fetch_add(1, Ordering::Relaxed);
                rtdc_obs::log::event(rtdc_obs::log::Level::Warn, "store_spill_failed")
                    .str("key", &key.to_string())
                    .str("detail", &e.to_string())
                    .emit();
            }
        }
        result
    }

    fn spill_inner(
        &self,
        final_path: &Path,
        key: &CacheKey,
        image: &MemoryImage,
    ) -> Result<(), StoreError> {
        let seq = self.spill_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            "tmp-{}-{}-{seq}",
            std::process::id(),
            file_name(key)
        ));
        let bytes = encode_store_file(key, image);
        let write = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            // fsync before rename: the rename must never become visible
            // with the data still in the page cache only.
            f.sync_all()?;
            Ok(())
        })();
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Err(io_err("write", &tmp, &e));
        }
        if let Err(e) = fs::rename(&tmp, final_path) {
            let _ = fs::remove_file(&tmp);
            return Err(io_err("rename", final_path, &e));
        }
        // fsync the directory so the rename itself is durable.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.entries.load(Ordering::Relaxed),
            scanned: self.scanned.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            tmp_cleaned: self.tmp_cleaned.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            load_failures: self.load_failures.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            spill_failures: self.spill_failures.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdc::image::{Segment, SizeReport};

    fn key(bench: &str, label: &str) -> CacheKey {
        CacheKey {
            bench: bench.to_string(),
            label: label.to_string(),
            plan_digest: 0xFEED,
        }
    }

    fn image(len: usize) -> MemoryImage {
        let mut img = MemoryImage {
            name: "t".into(),
            scheme: None,
            second_regfile: false,
            entry: 0x1000,
            initial_sp: 0x8000_0000,
            segments: vec![Segment {
                name: ".native".into(),
                base: 0x1000,
                bytes: vec![0x5A; len],
            }],
            c0_init: Vec::new(),
            handler_range: None,
            compressed_range: None,
            proc_regions: Vec::new(),
            proc_names: Vec::new(),
            sizes: SizeReport {
                original_text_bytes: len as u32,
                native_text_bytes: len as u32,
                compressed_payload_bytes: 0,
                handler_bytes: 0,
            },
            integrity: Vec::new(),
            line_crcs: Vec::new(),
        };
        img.seal();
        img
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "rtdc-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn spill_load_round_trip() {
        let dir = tmpdir("rt");
        let store = DiskStore::open(&dir).unwrap();
        let k = key("sort", "d");
        let img = image(128);
        store.spill(&k, &img).unwrap();
        let back = store.load(&k).unwrap().expect("present");
        assert_eq!(back, img);
        let s = store.stats();
        assert_eq!((s.spills, s.loads, s.entries), (1, 1, 1));
        // A key never spilled is a clean miss.
        assert_eq!(store.load(&key("sort", "cp")).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_recovers_entries_and_cleans_tmp_orphans() {
        let dir = tmpdir("reopen");
        {
            let store = DiskStore::open(&dir).unwrap();
            store.spill(&key("a", "d"), &image(64)).unwrap();
            store.spill(&key("b", "cp"), &image(64)).unwrap();
        }
        // A crash mid-spill leaves a tmp orphan.
        fs::write(dir.join("tmp-999-junk"), b"half a file").unwrap();
        let store = DiskStore::open(&dir).unwrap();
        let s = store.stats();
        assert_eq!((s.entries, s.scanned, s.tmp_cleaned), (2, 2, 1));
        assert_eq!(s.quarantined, 0);
        assert!(store.load(&key("a", "d")).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_quarantined_not_served() {
        let dir = tmpdir("corrupt");
        let k = key("sort", "d");
        {
            let store = DiskStore::open(&dir).unwrap();
            store.spill(&k, &image(256)).unwrap();
        }
        // Flip a byte in the payload region.
        let path = dir.join(file_name(&k));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let store = DiskStore::open(&dir).unwrap();
        let s = store.stats();
        assert_eq!((s.entries, s.quarantined), (0, 1));
        assert!(!path.exists(), "corrupt file must leave the store");
        assert!(dir.join(QUARANTINE_DIR).read_dir().unwrap().count() == 1);
        // The key is now a clean miss.
        assert_eq!(store.load(&k).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_stale_version_are_typed() {
        let k = key("sort", "d");
        let bytes = encode_store_file(&k, &image(64));
        for cut in 0..bytes.len() {
            let err = check_envelope(&bytes[..cut]).expect_err("truncated");
            assert!(
                matches!(
                    err,
                    StoreError::Truncated
                        | StoreError::ChecksumMismatch { .. }
                        | StoreError::BadMagic
                ),
                "cut {cut}: {err:?}"
            );
        }
        let mut stale = bytes.clone();
        stale[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            check_envelope(&stale).unwrap_err(),
            StoreError::BadVersion { found: 99 }
        );
        let mut garbage = bytes;
        garbage[0] = b'X';
        assert_eq!(check_envelope(&garbage).unwrap_err(), StoreError::BadMagic);
    }

    #[test]
    fn lazy_verify_quarantines_a_file_that_rots_after_scan() {
        let dir = tmpdir("rot");
        let k = key("sort", "d");
        let store = DiskStore::open(&dir).unwrap();
        store.spill(&k, &image(512)).unwrap();
        // Rot after the scan: flip a byte and fix the file CRC so only
        // the *segment seals* (the payload's own integrity layer) can
        // catch it — exactly the verify-on-first-hit contract.
        let path = dir.join(file_name(&k));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        fs::write(&path, &bytes).unwrap();

        let err = store.load(&k).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Poisoned { .. } | StoreError::BadImage { .. }
            ),
            "{err:?}"
        );
        assert!(!path.exists(), "rotten file must be quarantined");
        assert_eq!(store.stats().load_failures, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_names_are_sanitized_and_collision_safe() {
        let a = key("../evil", "d");
        let b = key("a/b", "d");
        let c = key("a_b", "d");
        let na = file_name(&a);
        assert!(!na.contains('/') && !na.contains(".."), "{na}");
        // `a/b` and `a_b` sanitize identically; the key CRC keeps the
        // files apart.
        let (nb, nc) = (file_name(&b), file_name(&c));
        assert_eq!(nb.split('-').next(), nc.split('-').next());
        assert_ne!(nb, nc);
    }
}
