//! A minimal JSON reader/writer for the serve protocol.
//!
//! The workspace is dependency-free by policy, and the protocol needs
//! only a small, *total* JSON subset: parse one request object per line,
//! render one response object per line. The parser is written for the
//! fuzz battery first — bounded recursion depth, no panics on any byte
//! sequence, every rejection a typed [`JsonError`] — and for fidelity
//! second (numbers are kept as `f64`/`u64`, which covers every field the
//! protocol defines).

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser. Requests are flat
/// objects; anything deeper is hostile or broken input, and a bound here
/// turns a stack overflow into a typed error.
pub const MAX_DEPTH: usize = 16;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as f64; the protocol's integral fields are
    /// range-checked at extraction time).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. A `BTreeMap` so iteration (and thus any re-rendering)
    /// is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object field `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a non-negative integer that fits `u64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n <= 2f64.powi(53) && n.fract() == 0.0 => Some(n as u64),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Why a byte sequence was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the error was detected at.
    pub at: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses exactly one JSON value spanning all of `text` (trailing
/// whitespace allowed, trailing garbage rejected).
///
/// # Errors
///
/// [`JsonError`] naming the offset and reason of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing garbage after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            at: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte {c:#04x}"))),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            if map.insert(key, val).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the protocol never emits them.
                            let ch = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this
                    // is always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("bad number `{text}`")))?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Num(n))
    }
}

/// Escapes `s` into a JSON string literal (with the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An incremental JSON-object writer with deterministic field order
/// (fields appear exactly in the order they are pushed).
#[derive(Debug, Default)]
pub struct ObjWriter {
    buf: String,
}

impl ObjWriter {
    /// Starts an empty object.
    pub fn new() -> ObjWriter {
        ObjWriter { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(&escape(key));
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(&escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field rendered with `prec` decimal places.
    pub fn f64(&mut self, key: &str, value: f64, prec: usize) -> &mut Self {
        self.key(key);
        self.buf.push_str(&format!("{value:.prec$}"));
        self
    }

    /// Adds a bool field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a raw, already-rendered JSON value (e.g. a nested object).
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Renders the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_objects() {
        let v = parse(r#"{"op":"run","bench":"sort","scheme":"d+rf","max_insns":1000}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("run"));
        assert_eq!(v.get("max_insns").and_then(Json::as_u64), Some(1000));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_escapes() {
        let raw = "line1\nline2\t\"quoted\" \\ \u{1}";
        let rendered = escape(raw);
        let back = parse(&rendered).unwrap();
        assert_eq!(back.as_str(), Some(raw));
    }

    #[test]
    fn rejects_depth_bombs_and_garbage() {
        let bomb = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(parse(&bomb).is_err());
        for bad in [
            "",
            "{",
            "}",
            "nul",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "[1,]",
            "1 2",
            "\"\\q\"",
            r#"{"a":1,"a":2}"#,
            "NaN",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn obj_writer_is_deterministic_and_parseable() {
        let mut w = ObjWriter::new();
        w.str("op", "stats")
            .u64("n", 7)
            .bool("ok", true)
            .f64("x", 0.5, 4);
        let line = w.finish();
        assert_eq!(line, r#"{"op":"stats","n":7,"ok":true,"x":0.5000}"#);
        assert!(parse(&line).is_ok());
    }

    #[test]
    fn numbers_out_of_integer_range_are_not_u64() {
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
