//! A fixed-size worker pool executing boxed jobs.
//!
//! The server dispatches each parsed request onto this pool, so CPU-bound
//! work (builds, simulation runs) is bounded by the pool width no matter
//! how many client connections exist; the per-connection reader threads
//! only parse lines and wait for their job's reply.
//!
//! Jobs never dispatch nested jobs, so the pool cannot deadlock on
//! itself; a job that panics is caught ([`std::panic::catch_unwind`])
//! and counted rather than killing the worker, so one bad request
//! cannot wedge the pool — the protocol-fuzz battery leans on this.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use rtdc_obs::Histogram;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool's shared instrumentation cells. Every update is one atomic
/// RMW on the job path; the telemetry layer reads them into registry
/// gauges at snapshot time.
#[derive(Default)]
struct PoolStats {
    queued: AtomicU64,
    executed: AtomicU64,
    panics: AtomicU64,
    in_flight: AtomicU64,
    /// Per-job wall-time histogram (microseconds), when attached.
    wall: Option<Arc<Histogram>>,
}

/// A fixed-size pool of worker threads consuming a shared job queue.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<PoolStats>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least 1).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool::spawn(threads, None)
    }

    /// Spawns `threads` workers recording per-job wall time into
    /// `wall` (microseconds) — the daemon's `serve.pool.job_wall.us`
    /// histogram.
    pub fn new_instrumented(threads: usize, wall: Arc<Histogram>) -> WorkerPool {
        WorkerPool::spawn(threads, Some(wall))
    }

    fn spawn(threads: usize, wall: Option<Arc<Histogram>>) -> WorkerPool {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let stats = Arc::new(PoolStats {
            wall,
            ..PoolStats::default()
        });
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("rtdc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &stats))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            stats,
        }
    }

    /// Enqueues `job`. Returns `false` if the pool is shut down.
    pub fn execute(&self, job: Job) -> bool {
        match &self.tx {
            Some(tx) => {
                // Count before the send so `queued >= executed` holds in
                // any observation (a worker cannot run a job the queue
                // counter has not yet seen).
                self.stats.queued.fetch_add(1, Ordering::Release);
                if tx.send(job).is_ok() {
                    true
                } else {
                    self.stats.queued.fetch_sub(1, Ordering::Relaxed);
                    false
                }
            }
            None => false,
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs whose closure panicked (caught; the worker survived).
    pub fn panics(&self) -> u64 {
        self.stats.panics.load(Ordering::Relaxed)
    }

    /// Jobs executed to completion (including caught panics).
    pub fn executed(&self) -> u64 {
        self.stats.executed.load(Ordering::Relaxed)
    }

    /// Jobs accepted by [`WorkerPool::execute`] so far.
    pub fn queued(&self) -> u64 {
        self.stats.queued.load(Ordering::Relaxed)
    }

    /// Jobs currently running on a worker.
    pub fn in_flight(&self) -> u64 {
        self.stats.in_flight.load(Ordering::Relaxed)
    }

    /// Jobs accepted but not yet started (the backlog a saturated pool
    /// accumulates). Computed from monotonic counters, so a racing
    /// observation can transiently read one high, never negative.
    pub fn queue_depth(&self) -> u64 {
        let queued = self.stats.queued.load(Ordering::Acquire);
        let started = self.stats.executed.load(Ordering::Relaxed)
            + self.stats.in_flight.load(Ordering::Relaxed);
        queued.saturating_sub(started)
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, stats: &PoolStats) {
    loop {
        let job = {
            let guard = rx.lock().expect("pool queue lock");
            guard.recv()
        };
        let Ok(job) = job else { return };
        stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
            stats.panics.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(wall) = &stats.wall {
            wall.observe_micros(started.elapsed());
        }
        // `in_flight` down before `executed` up: a finishing job is
        // briefly counted in neither, so `queue_depth` can only read
        // transiently high, never negative.
        stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        stats.executed.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for WorkerPool {
    /// Drains queued jobs and joins every worker.
    fn drop(&mut self) {
        self.tx.take();
        // The pool is shared via `Arc`, and job closures themselves hold
        // a clone (for the `stats` op) — so the *last* owner can be a
        // worker dropping a finished job. A thread must never join
        // itself (EDEADLK): skip our own handle and let that worker
        // wind down on its own once the closed queue drains.
        let me = std::thread::current().id();
        for worker in self.workers.drain(..) {
            if worker.thread().id() == me {
                continue;
            }
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn executes_jobs_on_many_threads() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..100u32 {
            let tx = tx.clone();
            assert!(pool.execute(Box::new(move || tx.send(i * i).unwrap())));
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        let want: Vec<u32> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, want);
        assert_eq!(pool.executed(), 100);
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        let pool = WorkerPool::new(2);
        for _ in 0..10 {
            pool.execute(Box::new(|| panic!("job panic")));
        }
        let (tx, rx) = mpsc::channel();
        for _ in 0..4 {
            let tx = tx.clone();
            pool.execute(Box::new(move || tx.send(1u8).unwrap()));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 4, "workers must survive panics");
        // The last worker may still be between its catch and the counter
        // bump; wait for all 14 jobs to be fully accounted.
        while pool.executed() < 14 {
            std::thread::yield_now();
        }
        assert_eq!(pool.panics(), 10);
    }

    #[test]
    fn instrumentation_settles_exactly() {
        let reg = rtdc_obs::MetricsRegistry::new();
        let wall = reg.histogram("pool.job_wall.us");
        let pool = WorkerPool::new_instrumented(2, Arc::clone(&wall));
        let (tx, rx) = mpsc::channel();
        for _ in 0..50u8 {
            let tx = tx.clone();
            assert!(pool.execute(Box::new(move || tx.send(1u8).unwrap())));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 50);
        while pool.executed() < 50 {
            std::thread::yield_now();
        }
        assert_eq!(pool.queued(), 50);
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.queue_depth(), 0);
        let h = wall.snapshot();
        assert_eq!(h.count, 50, "every job records one wall observation");
        assert_eq!(h.count, h.buckets.iter().map(|&(_, n)| n).sum::<u64>());
    }

    #[test]
    fn drop_drains_the_queue() {
        let (tx, rx) = mpsc::channel();
        {
            let pool = WorkerPool::new(1);
            for i in 0..20u8 {
                let tx = tx.clone();
                pool.execute(Box::new(move || tx.send(i).unwrap()));
            }
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 20, "drop must drain pending jobs");
    }
}
