//! A fixed-size worker pool executing boxed jobs.
//!
//! The server dispatches each parsed request onto this pool, so CPU-bound
//! work (builds, simulation runs) is bounded by the pool width no matter
//! how many client connections exist; the per-connection reader threads
//! only parse lines and wait for their job's reply.
//!
//! Jobs never dispatch nested jobs, so the pool cannot deadlock on
//! itself; a job that panics is caught ([`std::panic::catch_unwind`])
//! and counted rather than killing the worker, so one bad request
//! cannot wedge the pool — the protocol-fuzz battery leans on this.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads consuming a shared job queue.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    panics: Arc<AtomicU64>,
    executed: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least 1).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let panics = Arc::new(AtomicU64::new(0));
        let executed = Arc::new(AtomicU64::new(0));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let panics = Arc::clone(&panics);
                let executed = Arc::clone(&executed);
                std::thread::Builder::new()
                    .name(format!("rtdc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &panics, &executed))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            panics,
            executed,
        }
    }

    /// Enqueues `job`. Returns `false` if the pool is shut down.
    pub fn execute(&self, job: Job) -> bool {
        match &self.tx {
            Some(tx) => tx.send(job).is_ok(),
            None => false,
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs whose closure panicked (caught; the worker survived).
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Jobs executed to completion (including caught panics).
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, panics: &AtomicU64, executed: &AtomicU64) {
    loop {
        let job = {
            let guard = rx.lock().expect("pool queue lock");
            guard.recv()
        };
        let Ok(job) = job else { return };
        if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
            panics.fetch_add(1, Ordering::Relaxed);
        }
        executed.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for WorkerPool {
    /// Drains queued jobs and joins every worker.
    fn drop(&mut self) {
        self.tx.take();
        // The pool is shared via `Arc`, and job closures themselves hold
        // a clone (for the `stats` op) — so the *last* owner can be a
        // worker dropping a finished job. A thread must never join
        // itself (EDEADLK): skip our own handle and let that worker
        // wind down on its own once the closed queue drains.
        let me = std::thread::current().id();
        for worker in self.workers.drain(..) {
            if worker.thread().id() == me {
                continue;
            }
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn executes_jobs_on_many_threads() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..100u32 {
            let tx = tx.clone();
            assert!(pool.execute(Box::new(move || tx.send(i * i).unwrap())));
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        let want: Vec<u32> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, want);
        assert_eq!(pool.executed(), 100);
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        let pool = WorkerPool::new(2);
        for _ in 0..10 {
            pool.execute(Box::new(|| panic!("job panic")));
        }
        let (tx, rx) = mpsc::channel();
        for _ in 0..4 {
            let tx = tx.clone();
            pool.execute(Box::new(move || tx.send(1u8).unwrap()));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 4, "workers must survive panics");
        // The last worker may still be between its catch and the counter
        // bump; wait for all 14 jobs to be fully accounted.
        while pool.executed() < 14 {
            std::thread::yield_now();
        }
        assert_eq!(pool.panics(), 10);
    }

    #[test]
    fn drop_drains_the_queue() {
        let (tx, rx) = mpsc::channel();
        {
            let pool = WorkerPool::new(1);
            for i in 0..20u8 {
                let tx = tx.clone();
                pool.execute(Box::new(move || tx.send(i).unwrap()));
            }
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 20, "drop must drain pending jobs");
    }
}
