//! rtdc-serve: a concurrent build-and-run daemon for the rtdc toolchain.
//!
//! The batch CLI rebuilds every image it touches. This crate turns the
//! toolchain into a *service*: a daemon that accepts newline-delimited
//! JSON requests (`build` / `run` / `trace` / `plan` / `stats`) over a
//! Unix domain socket, multiplexes independent [`rtdc_sim::Machine`]
//! instances across a worker pool, and serves repeated builds from a
//! **content-addressed image cache** keyed by
//! `(benchmark, scheme label, plan digest)`.
//!
//! The cache leans on two invariants the rest of the workspace already
//! maintains:
//!
//! * [`CompressionPlan::digest`] covers exactly the decisions that
//!   determine image bytes (scheme, handler variant, per-procedure
//!   placement) and nothing else — so equal digests mean equal images,
//!   and the digest is a sound cache key.
//! * Every [`MemoryImage`] is sealed with per-segment CRCs
//!   ([PR 5's integrity machinery]) — so a cache hit can be *proven*
//!   fresh by re-verifying, and a poisoned entry is rejected and
//!   rebuilt rather than served.
//!
//! Correctness under concurrency is the point, and it is tested, not
//! assumed: the battery in `tests/` drives real sockets with racing
//! clients and asserts byte-identical responses against the serial
//! path, rejection of in-place cache corruption, exact counter
//! reconciliation under LRU pressure, and typed errors (never a panic,
//! never a wedged pool) for arbitrary malformed input.
//!
//! [`CompressionPlan::digest`]: rtdc::plan::CompressionPlan::digest
//! [`MemoryImage`]: rtdc::image::MemoryImage
//! [PR 5's integrity machinery]: rtdc::integrity

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod json;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod store;
