//! Randomized tests over the image builder and the full run pipeline:
//! randomized programs and selections must yield well-formed images and
//! architecturally equivalent executions (seeded, offline — no external
//! property-testing framework).

use rtdc_repro::core::prelude::*;
use rtdc_repro::isa::program::{ObjInsn, ObjectProgram, ProcId, Procedure};
use rtdc_repro::isa::{Instruction as I, Reg};
use rtdc_rng::Rng64;

const MAX_INSNS: u64 = 400_000;
const CASES: usize = 24;

/// Safe ALU filler over scratch registers.
fn filler(rng: &mut Rng64) -> I {
    const POOL: [Reg; 5] = [Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::A1];
    let rd = *rng.choose(&POOL);
    let rs = *rng.choose(&POOL);
    let rt = *rng.choose(&POOL);
    let imm = rng.gen_range(i16::MIN..=i16::MAX);
    match imm as u16 % 5 {
        0 => I::Addu { rd, rs, rt },
        1 => I::Xor { rd, rs, rt },
        2 => I::Addiu { rt: rd, rs, imm },
        3 => I::Sll {
            rd,
            rt: rs,
            shamt: (imm as u8) & 31,
        },
        _ => I::Sltu { rd, rs, rt },
    }
}

/// A random leaf procedure: filler body, checksum fold, return.
fn leaf_proc(rng: &mut Rng64, idx: usize) -> Procedure {
    let body_len = rng.gen_range(1..40);
    let mut code: Vec<ObjInsn> = (0..body_len).map(|_| ObjInsn::Insn(filler(rng))).collect();
    code.push(ObjInsn::Insn(I::Xor {
        rd: Reg::V0,
        rs: Reg::A0,
        rt: Reg::T0,
    }));
    code.push(ObjInsn::Insn(I::Addu {
        rd: Reg::V0,
        rs: Reg::V0,
        rt: Reg::T1,
    }));
    code.push(ObjInsn::Insn(I::Jr { rs: Reg::RA }));
    Procedure::new(format!("leaf{idx}"), code)
}

/// A random program: N leaf procedures and a driver that calls a random
/// schedule of them, threading a checksum, then prints and exits.
fn random_program(rng: &mut Rng64) -> ObjectProgram {
    let n = rng.gen_range(2usize..8);
    let leaves: Vec<Procedure> = (1..=n).map(|i| leaf_proc(rng, i)).collect();
    let schedule: Vec<usize> = (0..rng.gen_range(1..30))
        .map(|_| rng.gen_range(1..=n))
        .collect();

    let mut main: Vec<ObjInsn> = vec![ObjInsn::Insn(I::Addiu {
        rt: Reg::S1,
        rs: Reg::ZERO,
        imm: 7,
    })];
    for &p in &schedule {
        main.push(ObjInsn::Insn(I::Addu {
            rd: Reg::A0,
            rs: Reg::S1,
            rt: Reg::ZERO,
        }));
        main.push(ObjInsn::Call(ProcId(p)));
        main.push(ObjInsn::Insn(I::Addu {
            rd: Reg::S1,
            rs: Reg::V0,
            rt: Reg::ZERO,
        }));
    }
    main.extend([
        ObjInsn::Insn(I::Addu {
            rd: Reg::A0,
            rs: Reg::S1,
            rt: Reg::ZERO,
        }),
        ObjInsn::Insn(I::Addiu {
            rt: Reg::V0,
            rs: Reg::ZERO,
            imm: 1,
        }),
        ObjInsn::Insn(I::Syscall),
        ObjInsn::Insn(I::Andi {
            rt: Reg::A0,
            rs: Reg::S1,
            imm: 0x7f,
        }),
        ObjInsn::Insn(I::Addiu {
            rt: Reg::V0,
            rs: Reg::ZERO,
            imm: 10,
        }),
        ObjInsn::Insn(I::Syscall),
    ]);
    let mut procedures = vec![Procedure::new("main", main)];
    procedures.extend(leaves);
    ObjectProgram {
        name: "prop".into(),
        procedures,
        data: Vec::new(),
        entry: ProcId(0),
        addr_tables: Vec::new(),
    }
}

fn random_native_set(rng: &mut Rng64, n: usize) -> std::collections::BTreeSet<usize> {
    (0..n).filter(|_| rng.gen_bool()).collect()
}

/// Image segments never overlap, for any program/scheme/selection.
#[test]
fn segments_are_disjoint() {
    let mut rng = Rng64::seed_from_u64(0x1a6e_0001);
    for _ in 0..CASES {
        let program = random_program(&mut rng);
        let n = program.procedures.len();
        let selection = Selection::from_native_set(random_native_set(&mut rng, n), n);
        let scheme = if rng.gen_bool() {
            Scheme::CodePack
        } else {
            Scheme::Dictionary
        };
        let image = build_compressed(&program, scheme, false, &selection).unwrap();
        let mut ranges: Vec<(u32, u32, &str)> = image
            .segments
            .iter()
            .filter(|s| !s.bytes.is_empty())
            .map(|s| (s.base, s.end(), s.name.as_str()))
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "segments {} and {} overlap",
                w[0].2,
                w[1].2
            );
        }
        // Procedure regions are disjoint too and lie in text space.
        let mut procs = image.proc_regions.clone();
        procs.sort();
        for w in procs.windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
    }
}

/// Any random program runs identically native and compressed, under
/// any random selection and both schemes.
#[test]
fn random_programs_run_equivalently() {
    let mut rng = Rng64::seed_from_u64(0x1a6e_0002);
    for _ in 0..CASES {
        let program = random_program(&mut rng);
        let cfg = SimConfig::hpca2000_baseline();
        let n = program.procedures.len();
        let native_img = build_native(&program).unwrap();
        let native = run_image(&native_img, cfg, MAX_INSNS).unwrap();

        let selection = Selection::from_native_set(random_native_set(&mut rng, n), n);
        let scheme = if rng.gen_bool() {
            Scheme::CodePack
        } else {
            Scheme::Dictionary
        };
        let rf = rng.gen_bool();
        let image = build_compressed(&program, scheme, rf, &selection).unwrap();
        let run = run_image(&image, cfg, MAX_INSNS).unwrap();
        assert_eq!(run.output, native.output);
        assert_eq!(run.exit_code, native.exit_code);
        assert_eq!(run.stats.program_insns, native.stats.program_insns);
    }
}

/// Size invariants for arbitrary selections. Note a hybrid may be
/// SMALLER than both endpoints: unique-heavy procedures expand under
/// dictionary compression (§3.1), so pulling them native shrinks the
/// total — randomized testing found this before we believed it.
#[test]
fn selective_sizes_are_bounded() {
    let mut rng = Rng64::seed_from_u64(0x1a6e_0003);
    for _ in 0..CASES {
        let program = random_program(&mut rng);
        let sel = rng.gen_range(0usize..256);
        let n = program.procedures.len();
        let bits: std::collections::BTreeSet<usize> =
            (0..n).filter(|i| sel & (1 << i) != 0).collect();
        let selection = Selection::from_native_set(bits.clone(), n);
        let full = build_compressed(
            &program,
            Scheme::Dictionary,
            false,
            &Selection::all_compressed(n),
        )
        .unwrap();
        let none = build_compressed(
            &program,
            Scheme::Dictionary,
            false,
            &Selection::all_native(n),
        )
        .unwrap();
        let mid = build_compressed(&program, Scheme::Dictionary, false, &selection).unwrap();
        // Upper bound: the worse endpoint plus padding/dictionary slack.
        // Slack: region padding (up to 60B of nop words costs index bytes
        // plus a dictionary entry) and per-proc rounding.
        let hi = full
            .sizes
            .total_code_bytes()
            .max(none.sizes.total_code_bytes())
            + 160
            + 8 * n as u32;
        // Lower bound: the native-selected procedures are stored verbatim.
        let lo: u32 = bits
            .iter()
            .map(|&i| program.procedures[i].byte_size())
            .sum();
        let got = mid.sizes.total_code_bytes();
        assert!(got <= hi, "mid {got} above {hi}");
        assert!(got >= lo, "mid {got} below native bytes {lo}");
        assert_eq!(mid.sizes.native_text_bytes, lo);
    }
}
