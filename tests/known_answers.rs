//! Known-answer tests: real algorithms with independently computed ground
//! truth, run natively AND under every decompression scheme.
//!
//! Unlike the equivalence tests (which compare compressed runs against
//! native runs), these compare against answers computed *outside* the
//! simulator — CRC-32 of a known byte sequence, an insertion-sorted
//! checksum, a matrix-product trace — so a systematic bug that corrupts
//! native and compressed runs identically is still caught.

use rtdc_isa::program::ObjectProgram;
use rtdc_repro::core::prelude::*;
use rtdc_repro::workloads::programs;

const MAX_INSNS: u64 = 20_000_000;

/// Runs a program every way (native + 4 scheme/RF combos) and asserts the
/// expected output and exit code each time.
fn assert_known_answer(program: &ObjectProgram, expected_output: &str, expected_exit: u32) {
    let cfg = SimConfig::hpca2000_baseline();
    let n = program.procedures.len();

    let native = build_native(program).unwrap();
    let r = run_image(&native, cfg, MAX_INSNS).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&r.output),
        expected_output,
        "{}: native output",
        program.name
    );
    assert_eq!(r.exit_code, expected_exit, "{}: native exit", program.name);

    for scheme in [Scheme::Dictionary, Scheme::CodePack, Scheme::ByteDict] {
        for rf in [false, true] {
            let image =
                build_compressed(program, scheme, rf, &Selection::all_compressed(n)).unwrap();
            let r = run_image(&image, cfg, MAX_INSNS).unwrap();
            assert_eq!(
                String::from_utf8_lossy(&r.output),
                expected_output,
                "{}: {scheme:?} rf={rf}",
                program.name
            );
            assert_eq!(
                r.exit_code, expected_exit,
                "{}: {scheme:?} rf={rf}",
                program.name
            );
            assert!(
                r.stats.exceptions > 0,
                "{}: decompressor must run",
                program.name
            );
        }
    }
}

/// Insertion sort of 64 xorshift32 values; checksum = Σ i·a[i] (wrapping),
/// computed independently in the test header's comment:
/// sorted ascending as *signed* ints, checksum = -162428379.
#[test]
fn sort_program_sorts() {
    assert_known_answer(&programs::sort_program(), "-162428379\n", 37);
}

/// CRC-32 (poly 0xEDB88320) over bytes 0..=255 is 0x29058C73 = 688229491 —
/// verifiable with any standard CRC-32 implementation.
#[test]
fn crc32_program_matches_standard_crc() {
    assert_known_answer(&programs::crc32_program(), "688229491\n", 115);
}

/// A[i][j] = i+2j+1, B[i][j] = 3i−j+2; trace(A·B) = 540.
#[test]
fn matmul_program_computes_trace() {
    assert_known_answer(&programs::matmul_program(), "540\n", 28);
}

/// b[i] = (7i+3) & 0xF for i<200 contains the pattern [10,1,8] exactly 13
/// times in positions 0..197.
#[test]
fn strsearch_program_counts_matches() {
    assert_known_answer(&programs::strsearch_program(), "13\n", 13);
}

/// Selective compression on a real program: keep the hot procedure native,
/// answers unchanged.
#[test]
fn known_answers_survive_selective_compression() {
    let cfg = SimConfig::hpca2000_baseline();
    let program = programs::crc32_program();
    let (_, profile) = profile_native(&program, cfg, MAX_INSNS).unwrap();
    for strategy in [SelectBy::Execution, SelectBy::Miss] {
        let sel = Selection::by_profile(&profile, strategy, 0.5);
        let image = build_compressed(&program, Scheme::Dictionary, false, &sel).unwrap();
        let r = run_image(&image, cfg, MAX_INSNS).unwrap();
        assert_eq!(String::from_utf8_lossy(&r.output), "688229491\n");
    }
}
