//! Cross-crate integration: every workload style × every compression
//! scheme × every handler variant must be architecturally identical to the
//! native run, and the handler economics must match the paper.

use rtdc_repro::core::prelude::*;
use rtdc_repro::workloads::{generate, spec::tiny, BenchmarkSpec};

const MAX_INSNS: u64 = 50_000_000;

fn native_baseline(spec: &BenchmarkSpec) -> (Vec<u8>, u64, usize) {
    let program = generate(spec);
    let image = build_native(&program).unwrap();
    let run = run_image(&image, SimConfig::hpca2000_baseline(), MAX_INSNS).unwrap();
    (run.output, run.stats.cycles, program.procedures.len())
}

fn check_all_schemes(spec: &BenchmarkSpec) {
    let cfg = SimConfig::hpca2000_baseline();
    let program = generate(spec);
    let (native_out, native_cycles, n) = native_baseline(spec);
    assert!(
        !native_out.is_empty(),
        "{}: workload must produce output",
        spec.name
    );

    for scheme in [Scheme::Dictionary, Scheme::CodePack, Scheme::ByteDict] {
        for rf in [false, true] {
            let image =
                build_compressed(&program, scheme, rf, &Selection::all_compressed(n)).unwrap();
            let run = run_image(&image, cfg, MAX_INSNS).unwrap();
            assert_eq!(
                run.output, native_out,
                "{}: {scheme:?} rf={rf} diverged from native",
                spec.name
            );
            assert!(run.stats.exceptions > 0);
            assert!(run.stats.cycles > native_cycles);
        }
    }
}

#[test]
fn walker_style_equivalent_under_all_schemes() {
    check_all_schemes(&tiny::walker());
}

#[test]
fn loop_kernel_style_equivalent_under_all_schemes() {
    check_all_schemes(&tiny::loop_kernel());
}

#[test]
fn interpreter_style_equivalent_under_all_schemes() {
    check_all_schemes(&tiny::interpreter());
}

#[test]
fn selective_compression_every_threshold_is_correct() {
    let cfg = SimConfig::hpca2000_baseline();
    let spec = tiny::walker();
    let program = generate(&spec);
    let (native_out, _, _n) = native_baseline(&spec);
    let (_, profile) = profile_native(&program, cfg, MAX_INSNS).unwrap();

    let mut sizes = Vec::new();
    for strategy in [SelectBy::Execution, SelectBy::Miss] {
        for threshold in [0.05, 0.10, 0.15, 0.20, 0.50] {
            let sel = Selection::by_profile(&profile, strategy, threshold);
            let image = build_compressed(&program, Scheme::Dictionary, false, &sel).unwrap();
            let run = run_image(&image, cfg, MAX_INSNS).unwrap();
            assert_eq!(run.output, native_out, "{strategy} @ {threshold}");
            sizes.push((strategy, threshold, image.sizes.total_code_bytes()));
        }
    }
    // Within a strategy, higher thresholds never shrink the program.
    for w in sizes.chunks(5) {
        for pair in w.windows(2) {
            assert!(
                pair[0].2 <= pair[1].2,
                "sizes must grow with threshold: {pair:?}"
            );
        }
    }
}

#[test]
fn paper_handler_economics_hold_at_tiny_scale() {
    // The dictionary handler executes exactly 75 (or 42 with +RF)
    // instructions per miss regardless of workload.
    let cfg = SimConfig::hpca2000_baseline();
    let spec = tiny::interpreter();
    let program = generate(&spec);
    let n = program.procedures.len();
    for (rf, expected) in [(false, 75.0), (true, 42.0)] {
        let image = build_compressed(
            &program,
            Scheme::Dictionary,
            rf,
            &Selection::all_compressed(n),
        )
        .unwrap();
        let run = run_image(&image, cfg, MAX_INSNS).unwrap();
        assert_eq!(run.stats.handler_insns_per_exception(), expected, "rf={rf}");
    }
}

#[test]
fn miss_based_beats_exec_based_on_loop_code() {
    // The paper's §5.3 claim, checked end-to-end at tiny scale: at a
    // matched threshold, miss-based selection yields at most the overhead
    // of execution-based selection on a loop-oriented program.
    let cfg = SimConfig::hpca2000_baseline();
    let spec = tiny::loop_kernel();
    let program = generate(&spec);
    let (_, profile) = profile_native(&program, cfg, MAX_INSNS).unwrap();
    let slow = |strategy| {
        let sel = Selection::by_profile(&profile, strategy, 0.5);
        let image = build_compressed(&program, Scheme::Dictionary, false, &sel).unwrap();
        let run = run_image(&image, cfg, MAX_INSNS).unwrap();
        (run.stats.cycles, image.sizes.total_code_bytes())
    };
    let (exec_cycles, exec_size) = slow(SelectBy::Execution);
    let (miss_cycles, miss_size) = slow(SelectBy::Miss);
    // Miss-based keeps the cold, miss-prone procedures native and
    // compresses the kernels; it must win on at least one axis and not
    // lose badly on the other.
    assert!(
        miss_cycles as f64 <= exec_cycles as f64 * 1.05,
        "miss-based {miss_cycles} vs exec-based {exec_cycles}"
    );
    assert!(
        miss_size <= exec_size * 11 / 10,
        "miss-based {miss_size}B vs exec-based {exec_size}B"
    );
}

#[test]
fn deterministic_end_to_end() {
    // Same spec, two independent end-to-end runs: identical stats.
    let cfg = SimConfig::hpca2000_baseline();
    let spec = tiny::walker();
    let runs: Vec<_> = (0..2)
        .map(|_| {
            let program = generate(&spec);
            let image = build_compressed(
                &program,
                Scheme::CodePack,
                true,
                &Selection::all_compressed(program.procedures.len()),
            )
            .unwrap();
            let run = run_image(&image, cfg, MAX_INSNS).unwrap();
            (run.stats, run.output)
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
}
