//! Decode-cache differential tests.
//!
//! The pre-decoded instruction store (`SimConfig::decode_cache`) is a pure
//! host-side optimization: it may never change *anything* observable — not
//! the architectural results (registers, memory, output, exit code) and
//! not the simulated statistics (cycles, misses, exceptions). These tests
//! run the four known-answer programs and a randomized synthetic workload
//! under native code and every decompression scheme with the decode cache
//! on and off, asserting the full [`Stats`] structs compare equal.
//!
//! The small-I-cache variants matter most: a tiny instruction cache forces
//! constant eviction and refill, so compressed lines are repeatedly
//! rewritten by `swic` at the *same* virtual PC with different procedure
//! bodies resident — exactly the aliasing pattern a stale decode-cache
//! entry would corrupt. The decode store self-validates by keying each
//! slot on `(pc, word)`, so a changed word can never replay a stale
//! decode; these tests are the proof.

use rtdc_isa::program::ObjectProgram;
use rtdc_repro::core::prelude::*;
use rtdc_repro::workloads::{generate, programs, spec::tiny};

const MAX_INSNS: u64 = 50_000_000;

/// All scheme variants a program can run under: native plus the four
/// paper configurations (D, D+RF, CP, CP+RF).
const VARIANTS: [(Option<Scheme>, bool); 5] = [
    (None, false),
    (Some(Scheme::Dictionary), false),
    (Some(Scheme::Dictionary), true),
    (Some(Scheme::CodePack), false),
    (Some(Scheme::CodePack), true),
];

/// Runs `program` under one scheme variant with the decode cache on and
/// off and asserts architecturally identical results *and* identical
/// statistics. Returns the (shared) stats for further shape checks.
fn assert_cache_transparent(
    program: &ObjectProgram,
    scheme: Option<Scheme>,
    rf: bool,
    cfg: SimConfig,
) -> rtdc_repro::sim::Stats {
    let image = match scheme {
        None => build_native(program).unwrap(),
        Some(s) => {
            let n = program.procedures.len();
            build_compressed(program, s, rf, &Selection::all_compressed(n)).unwrap()
        }
    };
    let on = run_image(&image, cfg.with_decode_cache(true), MAX_INSNS).unwrap();
    let off = run_image(&image, cfg.with_decode_cache(false), MAX_INSNS).unwrap();
    let label = format!("{}: {scheme:?} rf={rf}", program.name);
    assert_eq!(on.exit_code, off.exit_code, "{label}: exit code");
    assert_eq!(on.output, off.output, "{label}: output bytes");
    assert_eq!(on.stats, off.stats, "{label}: stats diverged");
    on.stats
}

/// Every known-answer program, every scheme, baseline 16KB I-cache.
#[test]
fn known_answer_programs_identical_with_decode_cache() {
    let cfg = SimConfig::hpca2000_baseline();
    for program in programs::all_programs() {
        for (scheme, rf) in VARIANTS {
            let stats = assert_cache_transparent(&program, scheme, rf, cfg);
            if scheme.is_some() {
                assert!(
                    stats.exceptions > 0,
                    "{}: decompressor must run",
                    program.name
                );
            }
        }
    }
}

/// Every known-answer program again with a deliberately tiny (1KB)
/// I-cache: constant eviction means `swic` rewrites the same cache-resident
/// PCs over and over, churning the decode store's slots through
/// eviction/refill and native↔compressed transitions.
#[test]
fn known_answer_programs_identical_under_cache_thrash() {
    let cfg = SimConfig::hpca2000_baseline().with_icache_size(1024);
    for program in programs::all_programs() {
        for (scheme, rf) in VARIANTS {
            let stats = assert_cache_transparent(&program, scheme, rf, cfg);
            if scheme.is_some() {
                assert!(
                    stats.exceptions > 0,
                    "{}: thrashing run must take decompression exceptions",
                    program.name
                );
            }
        }
    }
}

/// A randomized synthetic workload (the tiny walker analog: Zipf-sampled
/// procedure calls over generated filler code) under all schemes, at both
/// the baseline and a thrashing I-cache size.
#[test]
fn randomized_workload_identical_with_decode_cache() {
    let program = generate(&tiny::walker());
    for cfg in [
        SimConfig::hpca2000_baseline(),
        SimConfig::hpca2000_baseline().with_icache_size(2048),
    ] {
        for (scheme, rf) in VARIANTS {
            assert_cache_transparent(&program, scheme, rf, cfg);
        }
    }
}
