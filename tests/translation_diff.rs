//! Block-translation differential tests.
//!
//! Basic-block translated execution (`SimConfig::translate`) is a pure
//! host-side optimization: it may never change *anything* observable —
//! not the architectural results (registers, memory, output, exit code)
//! and not the simulated statistics (cycles, misses, stalls,
//! exceptions). These tests run the known-answer programs and a
//! randomized synthetic workload under native code and every
//! decompression scheme with translation on and off, asserting the full
//! [`Stats`] structs compare equal.
//!
//! The hard cases the suite is built around:
//!
//! * **`swic` churn** — a tiny I-cache forces the decompression handler
//!   to rewrite the same cache-resident PCs over and over with
//!   different procedure bodies; every rewrite must invalidate the
//!   blocks built from the overwritten bytes, and every eviction must
//!   push dispatch back to the interpreter step that re-fills the line.
//! * **self-modifying code** — an ordinary store into text changes main
//!   memory but *not* the resident I-cache line, so the new bytes
//!   become fetchable (and must invalidate blocks) only at the next
//!   refill of the granule.
//! * **injected faults** — a corrupted image must be detected, halted
//!   on, or survived *identically* whether the simulator single-steps
//!   or runs translated blocks.

use rtdc_isa::program::ObjectProgram;
use rtdc_isa::{encode, Instruction, Reg};
use rtdc_repro::core::fault::FaultPlan;
use rtdc_repro::core::prelude::*;
use rtdc_repro::sim::{Machine, Stats};
use rtdc_repro::workloads::{generate, programs, spec::tiny};

const MAX_INSNS: u64 = 50_000_000;

/// All scheme variants a program can run under: native plus the four
/// paper configurations (D, D+RF, CP, CP+RF).
const VARIANTS: [(Option<Scheme>, bool); 5] = [
    (None, false),
    (Some(Scheme::Dictionary), false),
    (Some(Scheme::Dictionary), true),
    (Some(Scheme::CodePack), false),
    (Some(Scheme::CodePack), true),
];

/// Runs `program` under one scheme variant with translation on and off
/// and asserts architecturally identical results *and* identical
/// statistics. Returns the (shared) stats for further shape checks.
fn assert_translation_transparent(
    program: &ObjectProgram,
    scheme: Option<Scheme>,
    rf: bool,
    cfg: SimConfig,
) -> Stats {
    let image = match scheme {
        None => build_native(program).unwrap(),
        Some(s) => {
            let n = program.procedures.len();
            build_compressed(program, s, rf, &Selection::all_compressed(n)).unwrap()
        }
    };
    let on = run_image(&image, cfg.with_translation(true), MAX_INSNS).unwrap();
    let off = run_image(&image, cfg.with_translation(false), MAX_INSNS).unwrap();
    let label = format!("{}: {scheme:?} rf={rf}", program.name);
    assert_eq!(on.exit_code, off.exit_code, "{label}: exit code");
    assert_eq!(on.output, off.output, "{label}: output bytes");
    assert_eq!(on.stats, off.stats, "{label}: stats diverged");
    on.stats
}

/// Every known-answer program, every scheme, baseline 16KB I-cache.
#[test]
fn known_answer_programs_identical_with_translation() {
    let cfg = SimConfig::hpca2000_baseline();
    for program in programs::all_programs() {
        for (scheme, rf) in VARIANTS {
            let stats = assert_translation_transparent(&program, scheme, rf, cfg);
            if scheme.is_some() {
                assert!(
                    stats.exceptions > 0,
                    "{}: decompressor must run",
                    program.name
                );
            }
        }
    }
}

/// Every known-answer program again with a deliberately tiny (1KB)
/// I-cache: constant eviction means `swic` rewrites the same
/// cache-resident PCs over and over with different procedure bodies —
/// exactly the pattern a stale translated block would corrupt — and
/// every dispatch whose backing line was evicted must fall back to the
/// interpreter step that performs the refill.
#[test]
fn known_answer_programs_identical_under_swic_thrash() {
    let cfg = SimConfig::hpca2000_baseline().with_icache_size(1024);
    for program in programs::all_programs() {
        for (scheme, rf) in VARIANTS {
            let stats = assert_translation_transparent(&program, scheme, rf, cfg);
            if scheme.is_some() {
                assert!(
                    stats.exceptions > 0,
                    "{}: thrashing run must take decompression exceptions",
                    program.name
                );
            }
        }
    }
}

/// A randomized synthetic workload (the tiny walker analog: Zipf-sampled
/// procedure calls over generated filler code) under all schemes, at
/// both the baseline and a thrashing I-cache size.
#[test]
fn randomized_workload_identical_with_translation() {
    let program = generate(&tiny::walker());
    for cfg in [
        SimConfig::hpca2000_baseline(),
        SimConfig::hpca2000_baseline().with_icache_size(2048),
    ] {
        for (scheme, rf) in VARIANTS {
            assert_translation_transparent(&program, scheme, rf, cfg);
        }
    }
}

/// Self-modifying code: a loop alternately stores two different
/// encodings over one of its own instructions, then floods the (1KB)
/// I-cache with straight-line code so the patched line is evicted and
/// refilled. The store changes main memory, not the resident line, so
/// the new instruction becomes fetchable only at the refill — the
/// translated engine must invalidate the block built from the old bytes
/// at exactly that point, never earlier or later, to stay
/// cycle-identical with the interpreter.
#[test]
fn self_modifying_code_identical_with_translation() {
    const TEXT_BASE: u32 = 0x1000;
    const DATA_BASE: u32 = 0x1000_0000;
    let flood = "        addu $zero, $zero, $zero\n".repeat(300);
    let src = format!(
        "
        li   $s0, 24
        la   $s1, patch
        li   $s2, {DATA_BASE}
        lw   $s3, 0($s2)
        lw   $s4, 4($s2)
loop:
        li   $t0, 0
        jal  patchsub
        addu $s5, $s5, $t0
        jal  flood
        andi $t1, $s0, 1
        beqz $t1, even
        sw   $s3, 0($s1)
        b    next
even:
        sw   $s4, 0($s1)
next:
        addiu $s0, $s0, -1
        bnez $s0, loop
        li   $v0, 10
        li   $a0, 0
        syscall
patchsub:
patch:
        addiu $t0, $t0, 1
        jr   $ra
flood:
{flood}
        jr   $ra
"
    );
    let out = rtdc_isa::asm::assemble(&src, TEXT_BASE, DATA_BASE).expect("assembles");
    let variant_a = encode(Instruction::Addiu {
        rt: Reg::T0,
        rs: Reg::T0,
        imm: 7,
    });
    let variant_b = encode(Instruction::Addiu {
        rt: Reg::T0,
        rs: Reg::T0,
        imm: 100,
    });

    let run = |translate: bool| {
        let cfg = SimConfig::hpca2000_baseline()
            .with_icache_size(1024)
            .with_translation(translate);
        let mut m = Machine::new(cfg);
        for (i, w) in out.encoded_text().iter().enumerate() {
            m.mem_mut().write_u32(TEXT_BASE + 4 * i as u32, *w);
        }
        m.mem_mut().write_u32(DATA_BASE, variant_a);
        m.mem_mut().write_u32(DATA_BASE + 4, variant_b);
        m.set_pc(TEXT_BASE);
        let outcome = m.run(MAX_INSNS).expect("runs to exit");
        (outcome.exit_code, m.pc(), m.reg(Reg::S5), *m.stats())
    };

    let (exit_on, pc_on, sum_on, stats_on) = run(true);
    let (exit_off, pc_off, sum_off, stats_off) = run(false);
    assert_eq!(exit_on, exit_off, "exit code");
    assert_eq!(pc_on, pc_off, "final PC");
    assert_eq!(sum_on, sum_off, "accumulated sum register");
    assert_eq!(stats_on, stats_off, "stats diverged");
    // The patch must actually have been observed: with every iteration
    // running the original `addiu $t0, $t0, 1` the sum would be 24.
    assert_ne!(sum_on, 24, "stores into text were never fetched");
}

/// Where an injected fault surfaced, in comparable form.
#[derive(Debug, PartialEq)]
enum Outcome {
    /// Rejected by load-time integrity verification.
    Load,
    /// Caught by the per-line fill check at an I-cache miss.
    Miss,
    /// The corrupted code trapped on its own (typed sim error).
    Halt(String),
    /// Ran to completion (rightly or wrongly).
    Done {
        exit: u32,
        output: Vec<u8>,
        stats: Box<Stats>,
    },
}

fn classify(r: Result<rtdc_repro::core::runner::RunReport, RunError>) -> Outcome {
    match r {
        Err(RunError::CorruptImage(_)) => Outcome::Load,
        Err(RunError::CorruptFill { .. }) => Outcome::Miss,
        Err(e) => Outcome::Halt(e.to_string()),
        Ok(r) => Outcome::Done {
            exit: r.exit_code,
            output: r.output,
            stats: Box::new(r.stats),
        },
    }
}

/// Injected faults — both storage-stage (load verification sees them)
/// and memory-stage (only the `--verify-lines` fill checks or the
/// corrupted code itself can surface them) — must be detected,
/// classified, and survived identically by the translated and
/// single-step engines. This is `faultsweep`'s classification loop run
/// differentially.
#[test]
fn injected_faults_classified_identically_with_translation() {
    let program = generate(&tiny::walker());
    let cfg = SimConfig::hpca2000_baseline();
    let n = program.procedures.len();
    for scheme in Scheme::all() {
        let clean =
            build_compressed(&program, scheme, false, &Selection::all_compressed(n)).unwrap();
        let reference = run_image(&clean, cfg, MAX_INSNS).unwrap();
        let budget = reference.stats.insns * 4 + 1_000_000;
        for i in 0..10u64 {
            let plan = FaultPlan::random(1000 + i, 1, &clean);
            let mut img = clean.clone();
            plan.apply(&mut img).unwrap();
            let memory_stage = i % 2 == 1;
            if memory_stage {
                img.reseal_segments();
            }
            let on = classify(run_image_verified(&img, cfg.with_translation(true), budget));
            let off = classify(run_image_verified(
                &img,
                cfg.with_translation(false),
                budget,
            ));
            assert_eq!(
                on,
                off,
                "{scheme:?} fault seed {} (memory_stage={memory_stage}): engines disagree",
                1000 + i
            );
        }
    }
}
