//! Umbrella crate for the `rtdc` reproduction of *"Reducing Code Size with
//! Run-time Decompression"* (Lefurgy, Piccininni, Mudge — HPCA 2000).
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can use a single dependency:
//!
//! * [`isa`] — the 32-bit MIPS-like ISA with `swic`/`iret`/`mfc0`.
//! * [`sim`] — the cycle-level embedded-core simulator.
//! * [`compress`] — dictionary, CodePack-style, and LZRW1 compression.
//! * [`core`] — compressed images, software decompression handlers,
//!   selective compression, and the experiment runner.
//! * [`workloads`] — synthetic stand-ins for the paper's benchmark suite.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use rtdc as core;
pub use rtdc_compress as compress;
pub use rtdc_isa as isa;
pub use rtdc_sim as sim;
pub use rtdc_workloads as workloads;
